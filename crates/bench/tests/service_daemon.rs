//! Process-level service tests: a real `qmad` daemon (spawning real
//! worker processes) driven through the crash, drain and degradation
//! drills the service exists for — SIGKILL of workers and of the
//! daemon itself with byte-identical recovery, SIGTERM lame-duck
//! exit 0, circuit-breaker quarantine of a worker-killing campaign,
//! and machine-readable admission refusals from `campaignctl`.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use qma_bench::campaign::run_campaign;
use qma_bench::campaign::spec::CampaignSpec;
use qma_bench::runner::Parallelism;
use qma_bench::service::ServicePaths;

/// Heavy enough (in a debug build) that each config runs for a long
/// stretch, so SIGKILL/SIGTERM land mid-campaign.
const LONG_SPEC: &str = r#"
[campaign]
name = "svclong"
scenario = "hidden_node"
seed = 5
replications = 2

[fixed]
delta = 50.0
packets = 150

[grid]
mac = ["qma", "unslotted_csma"]
"#;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qma-svc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_daemon(root: &Path, extra: &[&str]) -> Child {
    let log = std::fs::File::create(root.join("daemon.log")).unwrap();
    let elog = std::fs::File::create(root.join("daemon.err")).unwrap();
    Command::new(env!("CARGO_BIN_EXE_qmad"))
        .arg("--root")
        .arg(root)
        .args(["--heartbeat-ms", "25", "--lease-stale-ms", "500"])
        .args(extra)
        .stdout(Stdio::from(log))
        .stderr(Stdio::from(elog))
        .spawn()
        .expect("spawn qmad")
}

fn ctl(root: &Path, args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_campaignctl"))
        .arg("--root")
        .arg(root)
        .args(args)
        .output()
        .expect("run campaignctl");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn submit(root: &Path, spec: &Path) -> String {
    let (code, stdout) = ctl(root, &["submit", spec.to_str().unwrap()]);
    assert_eq!(code, 0, "submit refused: {stdout}");
    json_str_field(&stdout, "id").expect("submit must echo the campaign id")
}

/// Minimal `"key": "value"` extraction from campaignctl/status JSON.
fn json_str_field(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let at = text.find(&needle)? + needle.len();
    text[at..].split('"').next().map(str::to_string)
}

/// Worker pids from a rendered `status.json` (daemon_pid excluded —
/// the needle requires the quote right before `pid`).
fn worker_pids(status: &str) -> Vec<u32> {
    status
        .match_indices("\"pid\": ")
        .filter_map(|(at, needle)| {
            status[at + needle.len()..]
                .split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .collect()
}

/// Read-only journal-state probe (`Journal::open` would repair a
/// torn tail in place, which must never be done to a live daemon's
/// journal from outside).
fn journal_reached(paths: &ServicePaths, id: &str, state: &str) -> bool {
    std::fs::read_to_string(paths.journal_file(id))
        .map(|text| text.contains(&format!("state={state}")))
        .unwrap_or(false)
}

fn wait_for<F: FnMut() -> bool>(what: &str, deadline: Duration, mut ready: F) {
    let limit = Instant::now() + deadline;
    while !ready() {
        assert!(Instant::now() < limit, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Waits until the campaign's fabric holds at least one lease — a
/// worker is mid-config right now.
fn wait_for_lease(paths: &ServicePaths, id: &str, spec_name: &str) {
    let leases = paths.out_dir(id).join(format!("{spec_name}.fabric/leases"));
    wait_for("a worker lease", Duration::from_secs(120), || {
        std::fs::read_dir(&leases)
            .map(|entries| entries.flatten().count() > 0)
            .unwrap_or(false)
    });
}

fn sigterm(pid: u32) {
    assert!(Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .unwrap()
        .success());
}

fn sigkill(pid: u32) {
    let _ = Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .unwrap();
}

fn wait_exit(child: &mut Child, deadline: Duration) -> std::process::ExitStatus {
    let limit = Instant::now() + deadline;
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(Instant::now() < limit, "daemon did not exit in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn killed_worker_and_daemon_recover_byte_identical() {
    let work = tmp_dir("crash");
    let root = work.join("root");
    std::fs::create_dir_all(&root).unwrap();
    let spec_path = work.join("svclong.toml");
    std::fs::write(&spec_path, LONG_SPEC).unwrap();
    let paths = ServicePaths::new(&root);

    let mut daemon = spawn_daemon(&root, &["--workers", "2"]);
    let id = submit(&root, &spec_path);
    wait_for_lease(&paths, &id, "svclong");

    // Drill 1: SIGKILL a worker mid-config. The supervisor must
    // notice the death and the campaign must still converge. A lease
    // can appear a beat before the supervisor's next status snapshot
    // lists the worker's pid, so poll instead of reading once.
    let mut pids = Vec::new();
    wait_for(
        "status.json to expose worker pids",
        Duration::from_secs(30),
        || {
            pids = std::fs::read_to_string(&paths.status)
                .map(|s| worker_pids(&s))
                .unwrap_or_default();
            !pids.is_empty()
        },
    );
    sigkill(pids[0]);
    std::thread::sleep(Duration::from_millis(300));

    // Drill 2: SIGKILL the daemon itself — no destructors, no drain.
    daemon.kill().unwrap();
    daemon.wait().unwrap();

    // Restart: the journal replays, the fabric resumes, the campaign
    // archives. (Orphaned workers from the first incarnation may
    // still be finishing configs — determinism makes that benign.)
    let mut daemon = spawn_daemon(&root, &["--workers", "2"]);
    let archived_csv = paths.archive.join(&id).join("svclong.csv");
    wait_for(
        "the restarted daemon to archive",
        Duration::from_secs(300),
        || archived_csv.exists(),
    );
    wait_for(
        "the archived journal state",
        Duration::from_secs(60),
        || journal_reached(&paths, &id, "archived"),
    );

    // Byte-identity: the crash-riddled service run equals a plain
    // serial in-process campaign.
    let spec = CampaignSpec::parse(LONG_SPEC).unwrap();
    let plain = run_campaign(&spec, &work.join("plain"), Parallelism::Serial, |_| {}).unwrap();
    assert_eq!(
        std::fs::read(&archived_csv).unwrap(),
        std::fs::read(&plain.csv_path).unwrap(),
        "service-recovered CSV must be byte-identical to --serial"
    );

    // The working directory is retired once archived.
    wait_for("working state cleanup", Duration::from_secs(60), || {
        !paths.out_dir(&id).exists() && !paths.active_spec(&id).exists()
    });

    sigterm(daemon.id());
    assert!(wait_exit(&mut daemon, Duration::from_secs(60)).success());
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn sigterm_drains_to_exit_zero_and_restart_completes() {
    let work = tmp_dir("drain");
    let root = work.join("root");
    std::fs::create_dir_all(&root).unwrap();
    let spec_path = work.join("svclong.toml");
    std::fs::write(&spec_path, LONG_SPEC).unwrap();
    let paths = ServicePaths::new(&root);

    let mut daemon = spawn_daemon(&root, &["--workers", "2", "--drain-deadline-s", "240"]);
    let id = submit(&root, &spec_path);
    wait_for_lease(&paths, &id, "svclong");

    // Lame duck: leased configs finish, nothing new starts, exit 0.
    sigterm(daemon.id());
    let status = wait_exit(&mut daemon, Duration::from_secs(240));
    assert!(status.success(), "drain must exit 0, got {status}");
    assert_eq!(status.code(), Some(0));

    // No worker survives the drain, so no lease survives it either.
    let leases = paths.out_dir(&id).join("svclong.fabric/leases");
    let held = std::fs::read_dir(&leases)
        .map(|entries| entries.flatten().count())
        .unwrap_or(0);
    assert_eq!(held, 0, "drained workers must have released their leases");

    // While stopped, submissions are refused with the drain reason.
    let (code, stdout) = ctl(&root, &["submit", spec_path.to_str().unwrap()]);
    assert_eq!(code, 1, "a draining/stopped root must refuse: {stdout}");
    assert!(stdout.contains("draining"), "{stdout}");

    // Restart: the drained campaign resumes and archives; its bytes
    // match a plain serial run.
    let mut daemon = spawn_daemon(&root, &["--workers", "2"]);
    let archived_csv = paths.archive.join(&id).join("svclong.csv");
    wait_for(
        "the restarted daemon to archive",
        Duration::from_secs(300),
        || archived_csv.exists(),
    );
    let spec = CampaignSpec::parse(LONG_SPEC).unwrap();
    let plain = run_campaign(&spec, &work.join("plain"), Parallelism::Serial, |_| {}).unwrap();
    assert_eq!(
        std::fs::read(&archived_csv).unwrap(),
        std::fs::read(&plain.csv_path).unwrap()
    );

    // An idle daemon drains instantly.
    sigterm(daemon.id());
    assert!(wait_exit(&mut daemon, Duration::from_secs(60)).success());
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn circuit_breaker_quarantines_a_worker_killing_campaign() {
    let work = tmp_dir("breaker");
    let root = work.join("root");
    std::fs::create_dir_all(&root).unwrap();
    let spec_path = work.join("svclong.toml");
    std::fs::write(&spec_path, LONG_SPEC).unwrap();
    let paths = ServicePaths::new(&root);

    // kill-limit 1: the first worker death trips the breaker. (The
    // spec is healthy — the deaths are injected — but the daemon
    // cannot tell a crashy config from a crashy host, which is
    // exactly why the quarantine carries reproduction state.)
    let mut daemon = spawn_daemon(&root, &["--workers", "1", "--worker-kill-limit", "1"]);
    let id = submit(&root, &spec_path);
    wait_for_lease(&paths, &id, "svclong");
    let status = std::fs::read_to_string(&paths.status).unwrap();
    let pids = worker_pids(&status);
    assert!(!pids.is_empty(), "no worker pid in status.json:\n{status}");
    sigkill(pids[0]);

    let reason_file = paths.quarantine.join(&id).join("reason.json");
    wait_for(
        "the circuit breaker to trip",
        Duration::from_secs(120),
        || reason_file.exists(),
    );
    let reason = std::fs::read_to_string(&reason_file).unwrap();
    assert!(
        reason.contains("worker"),
        "unhelpful breaker reason: {reason}"
    );
    assert!(
        paths.quarantine.join(&id).join("spec.toml").exists(),
        "quarantine must carry the spec for reproduction"
    );
    wait_for("the failed journal state", Duration::from_secs(60), || {
        journal_reached(&paths, &id, "failed")
    });

    sigterm(daemon.id());
    assert!(wait_exit(&mut daemon, Duration::from_secs(60)).success());
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn admission_refusals_are_machine_readable() {
    let work = tmp_dir("admission");
    let root = work.join("root");
    std::fs::create_dir_all(&root).unwrap();
    let spec_a = work.join("a.toml");
    let spec_b = work.join("b.toml");
    std::fs::write(&spec_a, LONG_SPEC).unwrap();
    std::fs::write(&spec_b, LONG_SPEC.replace("seed = 5", "seed = 6")).unwrap();

    // No daemon: submission is pure directory protocol, refusals
    // come from the same admission code the daemon runs.
    let (code, stdout) = ctl(
        &root,
        &["--max-queue-depth", "1", "submit", spec_a.to_str().unwrap()],
    );
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("\"accepted\": true"), "{stdout}");

    // Identical bytes: idempotent duplicate, not a second campaign.
    let (code, stdout) = ctl(
        &root,
        &["--max-queue-depth", "1", "submit", spec_a.to_str().unwrap()],
    );
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("\"duplicate\": true"), "{stdout}");

    // Queue full: refused with a machine-readable reason, recorded
    // under rejected/.
    let (code, stdout) = ctl(
        &root,
        &["--max-queue-depth", "1", "submit", spec_b.to_str().unwrap()],
    );
    assert_eq!(code, 1, "{stdout}");
    assert_eq!(
        json_str_field(&stdout, "reason_code").as_deref(),
        Some("queue_depth"),
        "{stdout}"
    );
    let rejected_id = json_str_field(&stdout, "id").unwrap();
    let record = std::fs::read_to_string(
        ServicePaths::new(&root)
            .rejected
            .join(format!("{rejected_id}.json")),
    )
    .unwrap();
    assert!(record.contains("queue_depth"), "{record}");

    // Disk pressure: a 1-byte budget is always exceeded.
    let (code, stdout) = ctl(
        &root,
        &[
            "--disk-budget-bytes",
            "1",
            "submit",
            spec_b.to_str().unwrap(),
        ],
    );
    assert_eq!(code, 1, "{stdout}");
    assert_eq!(
        json_str_field(&stdout, "reason_code").as_deref(),
        Some("disk_pressure"),
        "{stdout}"
    );
    let _ = std::fs::remove_dir_all(&work);
}
