//! Network substrate: traffic generation, routing and the
//! data-collection application layer.
//!
//! The paper's workloads are Poisson data-collection flows toward a
//! sink ("nodes A and C generate 1000 data packets according to a
//! Poisson distribution", §6.1; fluctuating variants in §6.1.2 and
//! §6.3) routed over a static tree, plus GPSR route-discovery
//! broadcasts as secondary traffic in the DSME scenario.
//!
//! * [`traffic`] — [`TrafficPattern`]: Poisson, alternating-rate and
//!   silent sources with packet budgets and start offsets,
//! * [`app`] — [`CollectionApp`]: the upper layer that generates
//!   packets, forwards them hop by hop along a routing tree and
//!   accounts end-to-end PDR/delay at the sink,
//! * [`gpsr`] — a greedy geographic router with periodic hello
//!   broadcasts (the paper's GPSR stand-in; the broadcasts are what
//!   matter — they load the contention period).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod gpsr;
pub mod traffic;

pub use app::{CollectionApp, CollectionConfig};
pub use gpsr::{Gpsr, GpsrConfig};
pub use traffic::TrafficPattern;
