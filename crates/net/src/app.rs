//! The data-collection application layer.
//!
//! Implements the workload of the paper's evaluation: every source
//! generates Poisson traffic and sends it hop by hop along a static
//! routing tree to the sink, which accounts end-to-end PDR and delay.
//! All transmissions go through the contention MAC (primary traffic
//! over the CAP — the setting of §6.1 and §6.2).

use qma_des::SimTime;
use qma_netsim::{Address, AppInfo, Frame, NodeId, TxResult, UpperCtx, UpperLayer};

use crate::traffic::TrafficPattern;

/// Configuration of one node's [`CollectionApp`].
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionConfig {
    /// This node's traffic source.
    pub pattern: TrafficPattern,
    /// Next hop toward the sink (`None` for the sink itself).
    pub next_hop: Option<NodeId>,
    /// The sink (end-to-end accounting happens there).
    pub sink: NodeId,
    /// Application payload size in octets (drives airtime; the
    /// default 60 gives ≈ 2.6 ms frames — 2–3 subslots, as in the
    /// paper's "transmissions span over up to 3 subslots").
    pub payload_octets: u16,
}

impl CollectionConfig {
    /// A sink/forwarder with no own traffic.
    pub fn silent(next_hop: Option<NodeId>, sink: NodeId) -> Self {
        CollectionConfig {
            pattern: TrafficPattern::Silent,
            next_hop,
            sink,
            payload_octets: 60,
        }
    }
}

/// Timer tags.
const TAG_ARRIVAL: u64 = 1;

/// The data-collection upper layer.
#[derive(Debug)]
pub struct CollectionApp {
    cfg: CollectionConfig,
    generated: u64,
    seq: u32,
}

impl CollectionApp {
    /// Creates the app for one node.
    pub fn new(cfg: CollectionConfig) -> Self {
        CollectionApp {
            cfg,
            generated: 0,
            seq: 0,
        }
    }

    /// The app's configuration.
    pub fn config(&self) -> &CollectionConfig {
        &self.cfg
    }

    /// Packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    fn schedule_next_arrival(&mut self, ctx: &mut UpperCtx<'_>) {
        let now = ctx.now();
        if let Some(at) = self
            .cfg
            .pattern
            .next_arrival(now, self.generated, ctx.rng())
        {
            ctx.schedule(at.since(now), TAG_ARRIVAL);
        }
    }

    fn send_towards_sink(&mut self, ctx: &mut UpperCtx<'_>, app: AppInfo) {
        let Some(next) = self.cfg.next_hop else {
            return; // the sink does not forward
        };
        let node = ctx.node;
        self.seq = self.seq.wrapping_add(1);
        let frame = Frame::data(
            node,
            Address::Node(next),
            self.seq,
            self.cfg.payload_octets,
            true,
        )
        .with_app(app);
        ctx.enqueue_mac(frame);
    }
}

impl UpperLayer for CollectionApp {
    fn start(&mut self, ctx: &mut UpperCtx<'_>) {
        self.schedule_next_arrival(ctx);
    }

    fn on_timer(&mut self, ctx: &mut UpperCtx<'_>, tag: u64) {
        if tag != TAG_ARRIVAL {
            return;
        }
        let node = ctx.node;
        let now = ctx.now();
        self.generated += 1;
        ctx.metrics().app_generated(node);
        let app = AppInfo {
            origin: node,
            id: self.generated,
            created_at: now,
            hops: 0,
        };
        self.send_towards_sink(ctx, app);
        self.schedule_next_arrival(ctx);
    }

    fn on_deliver(&mut self, ctx: &mut UpperCtx<'_>, frame: &Frame) {
        let Some(app) = frame.app else {
            return; // management traffic is not ours
        };
        let node = ctx.node;
        if node == self.cfg.sink {
            let delay = ctx.now().since(app.created_at).as_secs_f64();
            ctx.metrics().app_delivered(app.origin, delay);
        } else {
            // Forward along the tree.
            let hopped = AppInfo {
                hops: app.hops + 1,
                ..app
            };
            self.send_towards_sink(ctx, hopped);
        }
    }

    fn on_tx_result(&mut self, ctx: &mut UpperCtx<'_>, frame: &Frame, result: TxResult) {
        // Losses show up as missing deliveries in the PDR; we also
        // keep per-cause counters for the analysis sections.
        let name = match result {
            TxResult::Delivered => "app_mac_delivered",
            TxResult::RetryLimit => "app_mac_retry_drop",
            TxResult::ChannelAccessFailure => "app_mac_ca_drop",
        };
        ctx.metrics().count(name, 1.0);
        let _ = frame;
    }
}

/// Builds the standard hidden-node workload of §6.1: nodes A (0) and
/// C (2) send `limit`-packet Poisson flows at `rate` pkt/s to sink B
/// (1), starting at t = 100 s.
pub fn hidden_node_apps(rate: f64, limit: u64) -> impl Fn(NodeId) -> CollectionApp {
    move |node| {
        let sink = NodeId(1);
        if node == sink {
            CollectionApp::new(CollectionConfig::silent(None, sink))
        } else {
            CollectionApp::new(CollectionConfig {
                pattern: TrafficPattern::Poisson {
                    rate,
                    start: SimTime::from_secs(100),
                    limit: Some(limit),
                },
                next_hop: Some(sink),
                sink,
                payload_octets: 60,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qma_des::SimDuration;
    use qma_mac::{CsmaConfig, CsmaMac};
    use qma_netsim::{FrameClock, SimBuilder};
    use qma_topo::Topology;

    fn collection_sim(
        topology: &Topology,
        rate: f64,
        limit: u64,
        seed: u64,
    ) -> qma_netsim::Sim<Box<CsmaMac>, Box<CollectionApp>> {
        let sink = NodeId(topology.sink as u32);
        let parents: Vec<Option<NodeId>> = topology
            .parent
            .iter()
            .map(|p| p.map(|i| NodeId(i as u32)))
            .collect();
        SimBuilder::new(topology.connectivity.clone(), seed)
            .clock(FrameClock::dsme_so3())
            .mac_factory(|_, clock| Box::new(CsmaMac::new(CsmaConfig::unslotted(), *clock)))
            .upper_factory(move |node, _| {
                let pattern = if node == sink {
                    TrafficPattern::Silent
                } else {
                    TrafficPattern::Poisson {
                        rate,
                        start: SimTime::from_secs(1),
                        limit: Some(limit),
                    }
                };
                Box::new(CollectionApp::new(CollectionConfig {
                    pattern,
                    next_hop: parents[node.index()],
                    sink,
                    payload_octets: 60,
                }))
            })
            .build()
    }

    #[test]
    fn single_hop_collection_delivers() {
        let topo = qma_topo::hidden_node();
        let mut sim = collection_sim(&topo, 2.0, 20, 3);
        sim.run_for(SimDuration::from_secs(40));
        let m = sim.metrics();
        // Light load: almost everything arrives despite hidden nodes.
        let pdr = m.pdr_of([NodeId(0), NodeId(2)]).unwrap();
        assert!(pdr > 0.8, "pdr {pdr}");
        assert!(m.mean_delay_of([NodeId(0), NodeId(2)]).unwrap() > 0.0);
    }

    #[test]
    fn multi_hop_forwarding_reaches_sink() {
        let topo = qma_topo::line(4, 10.0);
        let mut sim = collection_sim(&topo, 1.0, 10, 9);
        sim.run_for(SimDuration::from_secs(60));
        let m = sim.metrics();
        // The farthest node (3 hops) must still deliver most packets.
        let pdr = m.pdr(NodeId(3)).unwrap();
        assert!(pdr > 0.7, "3-hop pdr {pdr}");
        // Delay grows with distance.
        let d1 = m.mean_delay(NodeId(1)).unwrap();
        let d3 = m.mean_delay(NodeId(3)).unwrap();
        assert!(d3 > d1, "delay not increasing with hops: {d1} vs {d3}");
    }

    #[test]
    fn generation_budget_respected() {
        let topo = qma_topo::hidden_node();
        let mut sim = collection_sim(&topo, 50.0, 30, 5);
        sim.run_for(SimDuration::from_secs(30));
        assert_eq!(sim.metrics().generated(NodeId(0)), 30);
        assert_eq!(sim.metrics().generated(NodeId(2)), 30);
        assert_eq!(sim.metrics().generated(NodeId(1)), 0);
    }
}
