//! Traffic source patterns.

use qma_des::{SimDuration, SimTime};
use qma_stats::Exponential;
use rand::Rng;

/// When (and how fast) a node generates application packets.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficPattern {
    /// No traffic (pure sink / forwarder).
    Silent,
    /// Poisson arrivals at `rate` packets/s, beginning at `start`,
    /// stopping after `limit` packets when given. This is the
    /// paper's primary workload ("δ packets per second …
    /// generation of data packets starts after 100 s").
    Poisson {
        /// Mean packet rate δ in packets/s.
        rate: f64,
        /// Generation start time.
        start: SimTime,
        /// Total packets to generate (`None` = unlimited).
        limit: Option<u64>,
    },
    /// Alternating Poisson rates: `rates.0` for `period`, then
    /// `rates.1` for `period`, repeating — the fluctuating traffic of
    /// §6.1.2 (10 ↔ 100 pkt/s every 100 s) and §6.3 (1 ↔ 10 pkt/s
    /// every 5 s).
    Alternating {
        /// The two rates in packets/s.
        rates: (f64, f64),
        /// Half-period: how long each rate lasts.
        period: SimDuration,
        /// Generation start time.
        start: SimTime,
        /// Total packets to generate (`None` = unlimited).
        limit: Option<u64>,
    },
}

impl TrafficPattern {
    /// The paper's standard source: `rate` pkt/s from t = 100 s, 1000
    /// packets total (§6.1).
    pub fn paper_poisson(rate: f64) -> Self {
        TrafficPattern::Poisson {
            rate,
            start: SimTime::from_secs(100),
            limit: Some(1000),
        }
    }

    /// The instantaneous rate at `now` (0 when outside the active
    /// window).
    pub fn rate_at(&self, now: SimTime) -> f64 {
        match *self {
            TrafficPattern::Silent => 0.0,
            TrafficPattern::Poisson { rate, start, .. } => {
                if now >= start {
                    rate
                } else {
                    0.0
                }
            }
            TrafficPattern::Alternating {
                rates,
                period,
                start,
                ..
            } => {
                if now < start {
                    return 0.0;
                }
                let elapsed = now.since(start).as_micros();
                let phase = (elapsed / period.as_micros()) % 2;
                if phase == 0 {
                    rates.0
                } else {
                    rates.1
                }
            }
        }
    }

    /// The generation start time (`None` for silent sources).
    pub fn start(&self) -> Option<SimTime> {
        match *self {
            TrafficPattern::Silent => None,
            TrafficPattern::Poisson { start, .. } | TrafficPattern::Alternating { start, .. } => {
                Some(start)
            }
        }
    }

    /// The packet budget, if any.
    pub fn limit(&self) -> Option<u64> {
        match *self {
            TrafficPattern::Silent => Some(0),
            TrafficPattern::Poisson { limit, .. } | TrafficPattern::Alternating { limit, .. } => {
                limit
            }
        }
    }

    /// Samples the next arrival instant strictly after `now`,
    /// assuming `generated` packets have been produced so far.
    /// Returns `None` when the budget is exhausted or the source is
    /// silent.
    ///
    /// For alternating sources the exponential gap is sampled at the
    /// *current* rate and re-evaluated if it crosses a rate switch —
    /// a standard thinning-free approximation that is exact in the
    /// limit of short gaps relative to the period.
    pub fn next_arrival<R: Rng + ?Sized>(
        &self,
        now: SimTime,
        generated: u64,
        rng: &mut R,
    ) -> Option<SimTime> {
        if let Some(limit) = self.limit() {
            if generated >= limit {
                return None;
            }
        }
        let start = self.start()?;
        let mut t = now.max(start);
        // Walk across rate-switch boundaries until a gap lands inside
        // its own rate regime.
        for _ in 0..64 {
            let rate = self.rate_at(t);
            if rate <= 0.0 {
                return None;
            }
            let gap = Exponential::new(rate).expect("positive rate").sample(rng);
            let candidate = t + SimDuration::from_secs_f64(gap);
            match *self {
                TrafficPattern::Alternating { period, start, .. } => {
                    let boundary = next_switch(t, start, period);
                    if candidate <= boundary {
                        return Some(candidate);
                    }
                    // Restart the memoryless clock at the boundary.
                    t = boundary;
                }
                _ => return Some(candidate),
            }
        }
        Some(t) // pathological parameters: degrade gracefully
    }
}

/// The first rate-switch instant strictly after `t`.
fn next_switch(t: SimTime, start: SimTime, period: SimDuration) -> SimTime {
    let elapsed = t.since(start).as_micros();
    let k = elapsed / period.as_micros() + 1;
    start + period * k
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_rate_window() {
        let p = TrafficPattern::paper_poisson(25.0);
        assert_eq!(p.rate_at(SimTime::from_secs(50)), 0.0);
        assert_eq!(p.rate_at(SimTime::from_secs(100)), 25.0);
        assert_eq!(p.limit(), Some(1000));
    }

    #[test]
    fn alternating_phases() {
        let p = TrafficPattern::Alternating {
            rates: (10.0, 100.0),
            period: SimDuration::from_secs(100),
            start: SimTime::from_secs(100),
            limit: None,
        };
        assert_eq!(p.rate_at(SimTime::from_secs(0)), 0.0);
        assert_eq!(p.rate_at(SimTime::from_secs(150)), 10.0);
        assert_eq!(p.rate_at(SimTime::from_secs(250)), 100.0);
        assert_eq!(p.rate_at(SimTime::from_secs(350)), 10.0);
    }

    #[test]
    fn arrival_rate_matches_poisson_mean() {
        let p = TrafficPattern::Poisson {
            rate: 50.0,
            start: SimTime::ZERO,
            limit: None,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let mut t = SimTime::ZERO;
        let mut n = 0u64;
        while t < SimTime::from_secs(100) {
            t = p.next_arrival(t, n, &mut rng).unwrap();
            n += 1;
        }
        // 50 pkt/s over 100 s → about 5000 arrivals.
        assert!((n as f64 - 5000.0).abs() < 250.0, "n = {n}");
    }

    #[test]
    fn budget_exhausts() {
        let p = TrafficPattern::Poisson {
            rate: 10.0,
            start: SimTime::ZERO,
            limit: Some(3),
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert!(p.next_arrival(SimTime::ZERO, 2, &mut rng).is_some());
        assert!(p.next_arrival(SimTime::ZERO, 3, &mut rng).is_none());
    }

    #[test]
    fn silent_never_fires() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(TrafficPattern::Silent
            .next_arrival(SimTime::ZERO, 0, &mut rng)
            .is_none());
        assert_eq!(TrafficPattern::Silent.rate_at(SimTime::from_secs(9)), 0.0);
    }

    #[test]
    fn arrivals_before_start_are_clamped_to_start() {
        let p = TrafficPattern::Poisson {
            rate: 1000.0,
            start: SimTime::from_secs(10),
            limit: None,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let t = p.next_arrival(SimTime::ZERO, 0, &mut rng).unwrap();
        assert!(t >= SimTime::from_secs(10));
    }

    #[test]
    fn alternating_respects_switch_boundaries() {
        // With an extreme rate imbalance the slow phase must still
        // produce arrivals *in* the slow phase, not carry over the
        // fast phase's clock.
        let p = TrafficPattern::Alternating {
            rates: (1000.0, 0.5),
            period: SimDuration::from_secs(10),
            start: SimTime::ZERO,
            limit: None,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = SimTime::ZERO;
        let mut slow_phase_arrivals = 0;
        for _ in 0..20_000 {
            t = match p.next_arrival(t, 0, &mut rng) {
                Some(t) => t,
                None => break,
            };
            let phase = (t.as_micros() / SimDuration::from_secs(10).as_micros()) % 2;
            if phase == 1 {
                slow_phase_arrivals += 1;
            }
            if t > SimTime::from_secs(100) {
                break;
            }
        }
        assert!(slow_phase_arrivals >= 1, "slow phase starved");
    }
}
