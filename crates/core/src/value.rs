//! Q-value arithmetic backends.
//!
//! §3.2 of the paper argues for plain table storage with at most "two
//! multiplications, three additions and |Aₜ|+1 array lookups" per
//! training step, and notes that choosing α = 0.5 with integer rewards
//! lets the learning-rate multiplication become a right shift —
//! enabling execution "on resource-restricted and embedded devices
//! without a floating-point unit". The future-work section proposes
//! shrinking entries to a few bits.
//!
//! We therefore make the value representation pluggable:
//!
//! * [`f32`] — the reference backend,
//! * [`Fixed16`] — Q8.8 signed fixed point in an `i16`, exercising
//!   the embedded-friendly path (α = 0.5 via arithmetic shift).

/// Arithmetic required of a Q-value representation.
///
/// The single non-trivial operation is [`QValue::bellman_target`],
/// computing `(1−α)·q + α·(r + γ·qmax)` — the inner part of the
/// paper's Eq. 5.
pub trait QValue: Copy + PartialOrd + std::fmt::Debug {
    /// Converts from `f32` (used for initialisation and rewards).
    fn from_f32(v: f32) -> Self;

    /// Converts to `f32` (used for reporting and plotting).
    fn to_f32(self) -> f32;

    /// Computes `(1−α)·self + α·(reward + γ·qmax_next)`.
    fn bellman_target(self, reward: f32, qmax_next: Self, alpha: f32, gamma: f32) -> Self;

    /// Subtracts the stochastic-environment penalty ξ (Eq. 4/5).
    fn penalized(self, xi: f32) -> Self;

    /// The larger of two values (`max` in Eq. 5).
    fn take_max(self, other: Self) -> Self {
        if other > self {
            other
        } else {
            self
        }
    }
}

impl QValue for f32 {
    fn from_f32(v: f32) -> Self {
        v
    }

    fn to_f32(self) -> f32 {
        self
    }

    fn bellman_target(self, reward: f32, qmax_next: Self, alpha: f32, gamma: f32) -> Self {
        (1.0 - alpha) * self + alpha * (reward + gamma * qmax_next)
    }

    fn penalized(self, xi: f32) -> Self {
        self - xi
    }
}

/// Signed Q8.8 fixed-point Q-value (±127.996, resolution 1/256).
///
/// All arithmetic is integer-only; with α = 0.5 the Bellman update
/// compiles to shifts and adds, matching the embedded implementation
/// path described in the paper.
///
/// # Examples
///
/// ```
/// use qma_core::{Fixed16, QValue};
///
/// let q = Fixed16::from_f32(-10.0);
/// let t = q.bellman_target(4.0, Fixed16::from_f32(-10.0), 0.5, 0.9);
/// // (1−α)(−10) + α(4 + 0.9·(−10)) = −5 + 0.5·(−5) = −7.5
/// assert!((t.to_f32() - (-7.5)).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fixed16(i16);

const FRAC_BITS: u32 = 8;
const ONE: i32 = 1 << FRAC_BITS;

impl Fixed16 {
    /// The raw underlying integer.
    pub const fn raw(self) -> i16 {
        self.0
    }

    /// Builds from a raw Q8.8 integer.
    pub const fn from_raw(raw: i16) -> Self {
        Fixed16(raw)
    }

    /// Smallest representable value (≈ −128).
    pub const MIN: Fixed16 = Fixed16(i16::MIN);

    /// Largest representable value (≈ +128).
    pub const MAX: Fixed16 = Fixed16(i16::MAX);

    fn saturate(v: i32) -> Fixed16 {
        Fixed16(v.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }
}

impl QValue for Fixed16 {
    fn from_f32(v: f32) -> Self {
        let scaled = (v * ONE as f32).round();
        Self::saturate(scaled as i32)
    }

    fn to_f32(self) -> f32 {
        self.0 as f32 / ONE as f32
    }

    fn bellman_target(self, reward: f32, qmax_next: Self, alpha: f32, gamma: f32) -> Self {
        // Parameters are quantised to Q8.8 once; on a device they
        // would be compile-time constants.
        let alpha_q = (alpha * ONE as f32).round() as i32;
        let gamma_q = (gamma * ONE as f32).round() as i32;
        let reward_q = (reward * ONE as f32).round() as i32;
        let q = self.0 as i32;
        let qn = qmax_next.0 as i32;
        // (γ·qmax) in Q8.8: product is Q16.16 → shift back.
        let discounted = (gamma_q * qn) >> FRAC_BITS;
        let target = reward_q + discounted;
        // (1−α)q + α·target, all Q8.8.
        let blended = (((ONE - alpha_q) * q) >> FRAC_BITS) + ((alpha_q * target) >> FRAC_BITS);
        Self::saturate(blended)
    }

    fn penalized(self, xi: f32) -> Self {
        let xi_q = (xi * ONE as f32).round() as i32;
        Self::saturate(self.0 as i32 - xi_q)
    }
}

impl std::fmt::Display for Fixed16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_bellman_matches_formula() {
        let q = -10.0f32;
        let t = q.bellman_target(4.0, -10.0, 0.5, 0.9);
        assert!((t - (-7.5)).abs() < 1e-6);
        // α=1, γ=1 (the worked example of Fig. 5): target = r + qmax.
        let t = q.bellman_target(4.0, -10.0, 1.0, 1.0);
        assert_eq!(t, -6.0);
    }

    #[test]
    fn fixed_roundtrip() {
        for v in [-10.0f32, -3.0, 0.0, 2.0, 4.0, 100.0, -100.0] {
            let f = Fixed16::from_f32(v);
            assert!((f.to_f32() - v).abs() < 1.0 / 256.0 + 1e-6, "{v}");
        }
    }

    #[test]
    fn fixed_saturates() {
        assert_eq!(Fixed16::from_f32(1e6), Fixed16::MAX);
        assert_eq!(Fixed16::from_f32(-1e6), Fixed16::MIN);
        let near_min = Fixed16::from_f32(-127.0);
        assert_eq!(near_min.penalized(10.0), Fixed16::MIN);
    }

    #[test]
    fn fixed_tracks_float_updates() {
        // Run a long random-ish update sequence through both backends
        // and require agreement within quantisation tolerance.
        let mut qf = -10.0f32;
        let mut qx = Fixed16::from_f32(-10.0);
        let rewards = [4.0, -3.0, 2.0, 1.0, 0.0, -2.0, 3.0, 4.0, -3.0, 2.0];
        let mut next = -10.0f32;
        for (i, &r) in rewards.iter().cycle().take(200).enumerate() {
            let t_f = qf.bellman_target(r, next, 0.5, 0.9);
            let t_x = qx.bellman_target(r, Fixed16::from_f32(next), 0.5, 0.9);
            qf = qf.penalized(1.0).take_max(t_f);
            qx = qx.penalized(1.0).take_max(t_x);
            next = (i % 7) as f32 - 3.0;
            assert!(
                (qf - qx.to_f32()).abs() < 0.25,
                "diverged at step {i}: {qf} vs {}",
                qx.to_f32()
            );
        }
    }

    #[test]
    fn penalize_then_max_implements_eq5() {
        // Eq. 5: Q ← max(Q − ξ, target).
        let q = 5.0f32;
        let target = 4.5f32;
        assert_eq!(q.penalized(1.0).take_max(target), 4.5); // target wins
        let target = 3.0f32;
        assert_eq!(q.penalized(1.0).take_max(target), 4.0); // penalty wins
    }

    #[test]
    fn take_max_prefers_self_on_equality() {
        // Equality must not be treated as an improvement anywhere.
        let a = Fixed16::from_f32(1.0);
        let b = Fixed16::from_f32(1.0);
        assert_eq!(a.take_max(b), a);
    }

    #[test]
    fn alpha_half_is_exact_in_fixed_point() {
        // With α=0.5 and integer rewards the fixed-point result is
        // exact: (q + r + γ·qmax)/2 where γ=1.
        let q = Fixed16::from_f32(-10.0);
        let t = q.bellman_target(2.0, Fixed16::from_f32(-4.0), 0.5, 1.0);
        assert_eq!(t.to_f32(), -6.0);
    }

    #[test]
    fn display() {
        assert_eq!(Fixed16::from_f32(1.5).to_string(), "1.500");
    }
}
