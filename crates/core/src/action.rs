//! The QMA action set (§4 of the paper).
//!
//! > "The action space of QMA is given by the set
//! > Aₜ = {QBackoff, QCCA, QSend}."

use std::fmt;

/// One of QMA's three actions.
///
/// * [`QmaAction::Backoff`] — wait for the next subslot, observing the
///   channel (a reward is earned for overhearing traffic, Eq. 6).
/// * [`QmaAction::Cca`] — perform a clear-channel assessment; transmit
///   on an idle channel, otherwise back off (Eq. 7).
/// * [`QmaAction::Send`] — transmit immediately without channel
///   assessment — the high-risk/high-reward action that also enables
///   priority transmission (Eq. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QmaAction {
    /// QBackoff: defer to the next subslot and observe.
    Backoff,
    /// QCCA: assess the channel, then transmit or defer.
    Cca,
    /// QSend: transmit immediately.
    Send,
}

impl QmaAction {
    /// All actions, in table order (Backoff, Cca, Send).
    pub const ALL: [QmaAction; 3] = [QmaAction::Backoff, QmaAction::Cca, QmaAction::Send];

    /// Number of actions.
    pub const COUNT: usize = 3;

    /// A stable dense index for table storage.
    pub const fn index(self) -> usize {
        match self {
            QmaAction::Backoff => 0,
            QmaAction::Cca => 1,
            QmaAction::Send => 2,
        }
    }

    /// Inverse of [`QmaAction::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 3`.
    pub fn from_index(idx: usize) -> QmaAction {
        Self::ALL[idx]
    }

    /// Returns `true` for the actions that may put a frame on the air.
    pub const fn may_transmit(self) -> bool {
        matches!(self, QmaAction::Cca | QmaAction::Send)
    }

    /// Single-letter code used in the paper's figures (B/C/S).
    pub const fn code(self) -> char {
        match self {
            QmaAction::Backoff => 'B',
            QmaAction::Cca => 'C',
            QmaAction::Send => 'S',
        }
    }
}

impl fmt::Display for QmaAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QmaAction::Backoff => write!(f, "QBackoff"),
            QmaAction::Cca => write!(f, "QCCA"),
            QmaAction::Send => write!(f, "QSend"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for a in QmaAction::ALL {
            assert_eq!(QmaAction::from_index(a.index()), a);
        }
    }

    #[test]
    fn indices_are_dense() {
        let mut idx: Vec<usize> = QmaAction::ALL.iter().map(|a| a.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn transmit_classification() {
        assert!(!QmaAction::Backoff.may_transmit());
        assert!(QmaAction::Cca.may_transmit());
        assert!(QmaAction::Send.may_transmit());
    }

    #[test]
    fn codes_match_paper_notation() {
        let codes: String = QmaAction::ALL.iter().map(|a| a.code()).collect();
        assert_eq!(codes, "BCS");
    }

    #[test]
    fn display_names() {
        assert_eq!(QmaAction::Backoff.to_string(), "QBackoff");
        assert_eq!(QmaAction::Cca.to_string(), "QCCA");
        assert_eq!(QmaAction::Send.to_string(), "QSend");
    }

    #[test]
    #[should_panic]
    fn from_index_out_of_range_panics() {
        let _ = QmaAction::from_index(3);
    }
}
