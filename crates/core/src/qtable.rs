//! The Q-table and policy table (paper §3.1, §4, Eq. 3 and Eq. 5).
//!
//! QMA's state space is just the subslot id, so the table is a dense
//! `M × |A|` array. The update implements the paper's Eq. 5:
//!
//! ```text
//! Q(mₜ,aₜ) ← max{ Q(mₜ,aₜ) − ξ,  (1−α)·Q(mₜ,aₜ) + α·(Rₜ + γ·maxₐ Q(mₜ₊ᵢ,a)) }
//! ```
//!
//! and the policy rule of Eq. 3 in its stated form: *"an agent only
//! selects a new action for Sₜ if the associated Q-value is strictly
//! greater than the Q-value of current policy π(Sₜ)"* — which both
//! prevents policy flapping between duplicate optima (§3.1) and lets
//! the penalty ξ eventually displace an action whose value decays
//! below an alternative (§3.1.1).

use crate::action::QmaAction;
use crate::value::QValue;

/// Learning hyper-parameters for a Q-table update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateParams {
    /// Learning rate α (paper evaluation: 0.5).
    pub alpha: f32,
    /// Discount factor γ (paper evaluation: 0.9).
    pub gamma: f32,
    /// Stochastic-environment penalty ξ (Eq. 4/5; Fig. 5 uses 2).
    pub xi: f32,
}

impl Default for UpdateParams {
    fn default() -> Self {
        UpdateParams {
            alpha: 0.5,
            gamma: 0.9,
            xi: 1.0,
        }
    }
}

/// A dense per-subslot Q-table with its policy.
///
/// # Examples
///
/// ```
/// use qma_core::{QTable, QmaAction};
/// use qma_core::qtable::UpdateParams;
///
/// let mut t: QTable<f32> = QTable::new(4, -10.0);
/// assert_eq!(t.policy(0), QmaAction::Backoff);
/// // A successful QSend in subslot 0 (α=1, γ=1 → target = 4 + (−10)).
/// let p = UpdateParams { alpha: 1.0, gamma: 1.0, xi: 2.0 };
/// t.update(0, QmaAction::Send, 4.0, 1, &p);
/// assert_eq!(t.q(0, QmaAction::Send), -6.0);
/// assert_eq!(t.policy(0), QmaAction::Send);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QTable<Q: QValue> {
    subslots: u16,
    values: Vec<Q>, // subslots × 3, row-major
    policy: Vec<QmaAction>,
}

impl<Q: QValue> QTable<Q> {
    /// Creates a table with every Q-value at `init` (the paper uses
    /// −10: "a number smaller than the largest punishment") and the
    /// policy initialised to QBackoff for every subslot (Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if `subslots` is zero.
    pub fn new(subslots: u16, init: f32) -> Self {
        assert!(subslots > 0, "need at least one subslot");
        QTable {
            subslots,
            values: vec![Q::from_f32(init); subslots as usize * QmaAction::COUNT],
            policy: vec![QmaAction::Backoff; subslots as usize],
        }
    }

    /// Number of subslots (states).
    pub fn subslots(&self) -> u16 {
        self.subslots
    }

    /// The Q-value of `(subslot, action)`.
    ///
    /// # Panics
    ///
    /// Panics if `subslot` is out of range.
    pub fn q(&self, subslot: u16, action: QmaAction) -> Q {
        self.values[self.cell(subslot, action)]
    }

    /// The greedy policy action for a subslot.
    ///
    /// # Panics
    ///
    /// Panics if `subslot` is out of range.
    pub fn policy(&self, subslot: u16) -> QmaAction {
        self.policy[subslot as usize]
    }

    /// `maxₐ Q(subslot, a)` — the bootstrap value of a state.
    pub fn qmax(&self, subslot: u16) -> Q {
        QmaAction::ALL
            .iter()
            .map(|&a| self.q(subslot, a))
            .fold(None::<Q>, |acc, v| {
                Some(match acc {
                    None => v,
                    Some(m) => m.take_max(v),
                })
            })
            .expect("at least one action")
    }

    /// Applies the paper's Eq. 5 update for the action taken in
    /// `subslot`, bootstrapping from `next_subslot` (the state `i`
    /// subslots later, where the outcome became known), then refreshes
    /// the policy per Eq. 3.
    ///
    /// Returns the new Q-value of the updated cell.
    pub fn update(
        &mut self,
        subslot: u16,
        action: QmaAction,
        reward: f32,
        next_subslot: u16,
        params: &UpdateParams,
    ) -> Q {
        let q_old = self.q(subslot, action);
        let qmax_next = self.qmax(next_subslot % self.subslots);
        let target = q_old.bellman_target(reward, qmax_next, params.alpha, params.gamma);
        let new_q = q_old.penalized(params.xi).take_max(target);
        let cell = self.cell(subslot, action);
        self.values[cell] = new_q;
        self.refresh_policy(subslot);
        new_q
    }

    /// Writes a raw Q-value (used by cautious startup's punishments
    /// and by tests), refreshing the policy.
    pub fn set_q(&mut self, subslot: u16, action: QmaAction, value: Q) {
        let cell = self.cell(subslot, action);
        self.values[cell] = value;
        self.refresh_policy(subslot);
    }

    /// Σₘ Q(m, π(m)) — the "cumulative Q-value per frame" metric of
    /// Fig. 10/12: the sum of Q-values of all subslots following the
    /// current policy.
    pub fn policy_value_sum(&self) -> f64 {
        (0..self.subslots)
            .map(|m| self.q(m, self.policy(m)).to_f32() as f64)
            .sum()
    }

    /// Iterates over `(subslot, policy action, Q-value)` triples.
    pub fn policy_iter(&self) -> impl Iterator<Item = (u16, QmaAction, f32)> + '_ {
        (0..self.subslots).map(move |m| {
            let a = self.policy(m);
            (m, a, self.q(m, a).to_f32())
        })
    }

    fn cell(&self, subslot: u16, action: QmaAction) -> usize {
        assert!(subslot < self.subslots, "subslot {subslot} out of range");
        subslot as usize * QmaAction::COUNT + action.index()
    }

    /// Eq. 3: switch to the argmax action only if its Q-value is
    /// strictly greater than the current policy's Q-value.
    fn refresh_policy(&mut self, subslot: u16) {
        let current = self.policy(subslot);
        let current_q = self.q(subslot, current);
        let mut best = current;
        let mut best_q = current_q;
        for &a in &QmaAction::ALL {
            let q = self.q(subslot, a);
            if q > best_q {
                best = a;
                best_q = q;
            }
        }
        self.policy[subslot as usize] = best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_params() -> UpdateParams {
        // The worked example of Fig. 5 uses α=1, γ=1, ξ=2.
        UpdateParams {
            alpha: 1.0,
            gamma: 1.0,
            xi: 2.0,
        }
    }

    #[test]
    fn init_state_matches_algorithm1() {
        let t: QTable<f32> = QTable::new(4, -10.0);
        for m in 0..4 {
            assert_eq!(t.policy(m), QmaAction::Backoff);
            for a in QmaAction::ALL {
                assert_eq!(t.q(m, a), -10.0);
            }
        }
        assert_eq!(t.policy_value_sum(), -40.0);
    }

    #[test]
    fn successful_send_updates_cell_and_policy() {
        // Fig. 5, n1, frame 1, subslot 1: QSend succeeds (R=4),
        // next-state max is −10 → Q = 4 − 10 = −6.
        let mut t: QTable<f32> = QTable::new(4, -10.0);
        let q = t.update(0, QmaAction::Send, 4.0, 1, &fig5_params());
        assert_eq!(q, -6.0);
        assert_eq!(t.policy(0), QmaAction::Send);
    }

    #[test]
    fn collision_applies_penalty_not_target() {
        // Fig. 5, subslot 3 of frame 1: QSend collides (R=−3): the
        // target −13 is *smaller* than Q−ξ = −12, so the cell becomes
        // −12 and the policy stays QBackoff.
        let mut t: QTable<f32> = QTable::new(4, -10.0);
        let q = t.update(2, QmaAction::Send, -3.0, 3, &fig5_params());
        assert_eq!(q, -12.0);
        assert_eq!(t.policy(2), QmaAction::Backoff);
    }

    #[test]
    fn backoff_chains_through_next_state() {
        // Fig. 5, n1, frame 1, subslot 4: QBackoff with an overheard
        // packet (R=2) bootstraps from subslot 1 (wrap-around), whose
        // max is −6 after the earlier QSend update → Q = 2 − 6 = −4.
        let mut t: QTable<f32> = QTable::new(4, -10.0);
        t.update(0, QmaAction::Send, 4.0, 1, &fig5_params());
        let q = t.update(
            3,
            QmaAction::Backoff,
            2.0,
            4, /* wraps to 0 */
            &fig5_params(),
        );
        assert_eq!(q, -4.0);
    }

    #[test]
    fn policy_does_not_switch_on_tie() {
        let mut t: QTable<f32> = QTable::new(1, -10.0);
        // Bring Backoff up to −5.
        t.set_q(0, QmaAction::Backoff, -5.0);
        assert_eq!(t.policy(0), QmaAction::Backoff);
        // Send reaches exactly −5 too: no strict improvement → keep B.
        t.set_q(0, QmaAction::Send, -5.0);
        assert_eq!(t.policy(0), QmaAction::Backoff);
        // Send exceeds −5 → switch.
        t.set_q(0, QmaAction::Send, -4.5);
        assert_eq!(t.policy(0), QmaAction::Send);
    }

    #[test]
    fn penalty_displaces_decaying_policy_action() {
        // §3.1.1: a fluctuating (collision-prone) action must decay
        // below a stable alternative and lose the policy.
        let params = UpdateParams {
            alpha: 1.0,
            gamma: 0.0,
            xi: 2.0,
        };
        let mut t: QTable<f32> = QTable::new(1, -10.0);
        t.update(0, QmaAction::Send, 4.0, 0, &params); // Send → 4, policy Send
        t.update(0, QmaAction::Backoff, 2.0, 0, &params); // Backoff → 2
        assert_eq!(t.policy(0), QmaAction::Send);
        // Repeated collisions: Send decays by ξ each time (target −3
        // is below Q−ξ until Q−ξ < −3).
        t.update(0, QmaAction::Send, -3.0, 0, &params); // 4→2 (tie with B, keep S)
        assert_eq!(t.policy(0), QmaAction::Send);
        t.update(0, QmaAction::Send, -3.0, 0, &params); // 2→0 < 2 → switch to B
        assert_eq!(t.policy(0), QmaAction::Backoff);
    }

    #[test]
    fn stable_optimum_is_restored_after_penalty() {
        // §3.1.1: "stable and optimal Q-values are reupdated to their
        // original value once they have been decremented".
        let params = UpdateParams {
            alpha: 1.0,
            gamma: 0.0,
            xi: 2.0,
        };
        let mut t: QTable<f32> = QTable::new(1, -10.0);
        t.update(0, QmaAction::Send, 4.0, 0, &params);
        t.update(0, QmaAction::Send, -3.0, 0, &params); // one collision: 4→2
        assert_eq!(t.q(0, QmaAction::Send), 2.0);
        t.update(0, QmaAction::Send, 4.0, 0, &params); // success: back to 4
        assert_eq!(t.q(0, QmaAction::Send), 4.0);
    }

    #[test]
    fn qmax_over_actions() {
        let mut t: QTable<f32> = QTable::new(2, -10.0);
        t.set_q(1, QmaAction::Cca, -3.0);
        t.set_q(1, QmaAction::Send, -7.0);
        assert_eq!(t.qmax(1), -3.0);
        assert_eq!(t.qmax(0), -10.0);
    }

    #[test]
    fn next_subslot_wraps() {
        let params = fig5_params();
        let mut t: QTable<f32> = QTable::new(4, -10.0);
        t.set_q(0, QmaAction::Cca, -1.0);
        // Updating subslot 3 with next=4 must bootstrap from subslot 0.
        let q = t.update(3, QmaAction::Backoff, 0.0, 4, &params);
        assert_eq!(q, -1.0); // 0 + 1·(−1)
    }

    #[test]
    fn policy_value_sum_follows_policy() {
        let mut t: QTable<f32> = QTable::new(2, -10.0);
        t.set_q(0, QmaAction::Send, 3.0);
        t.set_q(1, QmaAction::Cca, 1.0);
        assert_eq!(t.policy_value_sum(), 4.0);
        let items: Vec<_> = t.policy_iter().collect();
        assert_eq!(items[0], (0, QmaAction::Send, 3.0));
        assert_eq!(items[1], (1, QmaAction::Cca, 1.0));
    }

    #[test]
    fn works_with_fixed_point_backend() {
        use crate::value::Fixed16;
        let mut t: QTable<Fixed16> = QTable::new(4, -10.0);
        let p = fig5_params();
        let q = t.update(0, QmaAction::Send, 4.0, 1, &p);
        assert_eq!(q.to_f32(), -6.0);
        assert_eq!(t.policy(0), QmaAction::Send);
        let q = t.update(2, QmaAction::Send, -3.0, 3, &p);
        assert_eq!(q.to_f32(), -12.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_subslot_panics() {
        let t: QTable<f32> = QTable::new(2, -10.0);
        let _ = t.q(2, QmaAction::Backoff);
    }
}
