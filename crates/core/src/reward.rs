//! The local reward function (paper §4.1, Eq. 6–8, Table 4).
//!
//! Rewards are observed *locally*: each node rewards its own action
//! based on what it saw on the channel (ACK received, CCA busy,
//! packet overheard). The paper stresses that the concrete values are
//! "a careful balance between all actions": e.g. raising the QSend
//! success reward to 8 makes every node send in every subslot.

use crate::action::QmaAction;

/// The observable outcome of one executed action, from the acting
/// node's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionOutcome {
    /// QBackoff completed; `overheard` is `true` if a DATA or ACK
    /// frame was decoded during the subslot (Eq. 6).
    Backoff {
        /// Whether a DATA or ACK packet was overheard.
        overheard: bool,
    },
    /// QCCA found the channel busy and backed off (Eq. 7, third case).
    CcaBusy,
    /// QCCA found the channel idle and transmitted; `acked` tells
    /// whether the transmission succeeded (Eq. 7, first two cases).
    CcaTx {
        /// Whether an acknowledgement was received (or the broadcast
        /// is counted successful).
        acked: bool,
    },
    /// QSend transmitted immediately; `acked` as above (Eq. 8).
    SendTx {
        /// Whether an acknowledgement was received.
        acked: bool,
    },
}

impl ActionOutcome {
    /// The action this outcome belongs to.
    pub fn action(self) -> QmaAction {
        match self {
            ActionOutcome::Backoff { .. } => QmaAction::Backoff,
            ActionOutcome::CcaBusy | ActionOutcome::CcaTx { .. } => QmaAction::Cca,
            ActionOutcome::SendTx { .. } => QmaAction::Send,
        }
    }

    /// Did this outcome actually put a frame on the air?
    pub fn transmitted(self) -> bool {
        matches!(
            self,
            ActionOutcome::CcaTx { .. } | ActionOutcome::SendTx { .. }
        )
    }
}

/// The reward table of Eq. 6–8, configurable for ablation studies.
///
/// # Examples
///
/// ```
/// use qma_core::{ActionOutcome, RewardTable};
///
/// let r = RewardTable::paper();
/// assert_eq!(r.reward(ActionOutcome::SendTx { acked: true }), 4.0);
/// assert_eq!(r.reward(ActionOutcome::SendTx { acked: false }), -3.0);
/// assert_eq!(r.reward(ActionOutcome::CcaBusy), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardTable {
    /// QBackoff while a DATA/ACK packet was overheard (Eq. 6: 2).
    pub backoff_overheard: f32,
    /// QBackoff with nothing overheard (Eq. 6: 0).
    pub backoff_idle: f32,
    /// QCCA success + transmission success (Eq. 7: 3).
    pub cca_tx_success: f32,
    /// QCCA success + transmission failure (Eq. 7: −2).
    pub cca_tx_fail: f32,
    /// QCCA failed — channel busy (Eq. 7: 1).
    pub cca_busy: f32,
    /// QSend transmission success (Eq. 8: 4).
    pub send_success: f32,
    /// QSend transmission failure (Eq. 8: −3).
    pub send_fail: f32,
    /// Cautious-startup punishment written into the QCCA cell of a
    /// subslot in which foreign traffic was overheard (§4.3: −2).
    pub startup_punish_cca: f32,
    /// Cautious-startup punishment for the QSend cell (§4.3: −3).
    pub startup_punish_send: f32,
}

impl RewardTable {
    /// The values used throughout the paper.
    pub const fn paper() -> Self {
        RewardTable {
            backoff_overheard: 2.0,
            backoff_idle: 0.0,
            cca_tx_success: 3.0,
            cca_tx_fail: -2.0,
            cca_busy: 1.0,
            send_success: 4.0,
            send_fail: -3.0,
            startup_punish_cca: -2.0,
            startup_punish_send: -3.0,
        }
    }

    /// The paper's counter-example (§4.1): rewarding QSend success
    /// with 8 collapses cooperation — "every node executes QSend in
    /// every subslot". Used by the ablation benchmarks.
    pub const fn greedy_send() -> Self {
        let mut t = Self::paper();
        t.send_success = 8.0;
        t
    }

    /// The local reward for an observed outcome.
    pub fn reward(&self, outcome: ActionOutcome) -> f32 {
        match outcome {
            ActionOutcome::Backoff { overheard: true } => self.backoff_overheard,
            ActionOutcome::Backoff { overheard: false } => self.backoff_idle,
            ActionOutcome::CcaBusy => self.cca_busy,
            ActionOutcome::CcaTx { acked: true } => self.cca_tx_success,
            ActionOutcome::CcaTx { acked: false } => self.cca_tx_fail,
            ActionOutcome::SendTx { acked: true } => self.send_success,
            ActionOutcome::SendTx { acked: false } => self.send_fail,
        }
    }

    /// The most negative reward in the table; the paper initialises
    /// Q-values to "a number smaller than the largest punishment"
    /// (they use −10).
    pub fn largest_punishment(&self) -> f32 {
        [
            self.backoff_overheard,
            self.backoff_idle,
            self.cca_tx_success,
            self.cca_tx_fail,
            self.cca_busy,
            self.send_success,
            self.send_fail,
        ]
        .into_iter()
        .fold(f32::INFINITY, f32::min)
    }
}

impl Default for RewardTable {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_eq6_to_eq8() {
        let r = RewardTable::paper();
        // Eq. 6.
        assert_eq!(r.reward(ActionOutcome::Backoff { overheard: true }), 2.0);
        assert_eq!(r.reward(ActionOutcome::Backoff { overheard: false }), 0.0);
        // Eq. 7.
        assert_eq!(r.reward(ActionOutcome::CcaTx { acked: true }), 3.0);
        assert_eq!(r.reward(ActionOutcome::CcaTx { acked: false }), -2.0);
        assert_eq!(r.reward(ActionOutcome::CcaBusy), 1.0);
        // Eq. 8.
        assert_eq!(r.reward(ActionOutcome::SendTx { acked: true }), 4.0);
        assert_eq!(r.reward(ActionOutcome::SendTx { acked: false }), -3.0);
    }

    #[test]
    fn outcome_action_mapping() {
        assert_eq!(
            ActionOutcome::Backoff { overheard: true }.action(),
            QmaAction::Backoff
        );
        assert_eq!(ActionOutcome::CcaBusy.action(), QmaAction::Cca);
        assert_eq!(
            ActionOutcome::CcaTx { acked: false }.action(),
            QmaAction::Cca
        );
        assert_eq!(
            ActionOutcome::SendTx { acked: true }.action(),
            QmaAction::Send
        );
    }

    #[test]
    fn transmitted_flag() {
        assert!(!ActionOutcome::Backoff { overheard: false }.transmitted());
        assert!(!ActionOutcome::CcaBusy.transmitted());
        assert!(ActionOutcome::CcaTx { acked: false }.transmitted());
        assert!(ActionOutcome::SendTx { acked: true }.transmitted());
    }

    #[test]
    fn largest_punishment_is_send_fail() {
        assert_eq!(RewardTable::paper().largest_punishment(), -3.0);
    }

    #[test]
    fn risk_reward_ordering() {
        // The paper's design rationale: QSend success > QCCA success >
        // QBackoff overhear > CCA busy > idle; QSend failure is the
        // harshest punishment.
        let r = RewardTable::paper();
        assert!(r.send_success > r.cca_tx_success);
        assert!(r.cca_tx_success > r.backoff_overheard);
        assert!(r.backoff_overheard > r.cca_busy);
        assert!(r.cca_busy > r.backoff_idle);
        assert!(r.send_fail < r.cca_tx_fail);
    }

    #[test]
    fn greedy_variant_only_changes_send_success() {
        let g = RewardTable::greedy_send();
        let p = RewardTable::paper();
        assert_eq!(g.send_success, 8.0);
        assert_eq!(g.send_fail, p.send_fail);
        assert_eq!(g.cca_tx_success, p.cca_tx_success);
    }
}
