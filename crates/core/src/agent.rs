//! The QMA agent (paper §4, Algorithm 1, Fig. 2).
//!
//! One agent runs per node. Per subslot in which the node has traffic
//! it either follows its learned policy or explores (with the
//! parameter-based probability ρ of §4.2); the reward of the chosen
//! action only becomes known later (e.g. when an ACK arrives), so the
//! pending `(state, action)` pair is held until the caller reports the
//! [`ActionOutcome`]. New nodes pass through a cautious-startup
//! observation phase (§4.3) before acting.
//!
//! The agent is driver-agnostic: the MAC adapter in `qma-mac` drives
//! it against the radio simulation, the abstract game in
//! [`crate::game`] drives it directly.

use rand::Rng;

use crate::action::QmaAction;
use crate::explore::ExplorationTable;
use crate::qtable::{QTable, UpdateParams};
use crate::reward::{ActionOutcome, RewardTable};
use crate::value::QValue;

/// Static configuration of a QMA agent.
#[derive(Debug, Clone, PartialEq)]
pub struct QmaConfig {
    /// Number of contention subslots per frame (M). The paper divides
    /// the 8 CAP slots of a DSME superframe into 54 subslots.
    pub subslots: u16,
    /// Learning parameters α, γ, ξ (evaluation: α=0.5, γ=0.9).
    pub params: UpdateParams,
    /// Initial Q-value — "a number smaller than the largest
    /// punishment"; the paper initialises to −10.
    pub q_init: f32,
    /// The local reward function (Eq. 6–8).
    pub rewards: RewardTable,
    /// Parameter-based exploration table (Fig. 4).
    pub exploration: ExplorationTable,
    /// Cautious-startup length Δ in participated subslots (§4.3);
    /// 0 disables the startup phase.
    pub startup_subslots: u32,
    /// Whether cautious startup writes the −2/−3 punishments into the
    /// QCCA/QSend cells of subslots with overheard traffic (§4.3).
    pub startup_punishments: bool,
}

impl Default for QmaConfig {
    fn default() -> Self {
        QmaConfig {
            subslots: 54,
            params: UpdateParams::default(),
            q_init: -10.0,
            rewards: RewardTable::paper(),
            exploration: ExplorationTable::paper(),
            startup_subslots: 54,
            startup_punishments: true,
        }
    }
}

/// How an action was chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Forced QBackoff during cautious startup.
    Startup,
    /// Greedy: the policy action π(m).
    Greedy,
    /// A uniformly random action (exploration).
    Explore,
}

/// The result of [`QmaAgent::decide`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The action to execute in this subslot.
    pub action: QmaAction,
    /// How the action was selected.
    pub kind: DecisionKind,
    /// The exploration probability ρ that applied (recorded for the
    /// Fig. 11 metric).
    pub rho: f64,
}

/// Counters exposed for metrics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AgentStats {
    /// Total decisions taken (including startup subslots).
    pub decisions: u64,
    /// Decisions that were random explorations.
    pub explorations: u64,
    /// Q-table updates applied.
    pub updates: u64,
    /// Subslots spent in cautious startup.
    pub startup_subslots: u64,
}

/// The per-node QMA learning agent.
///
/// Generic over the Q-value backend `Q` — `f32` by default,
/// [`crate::Fixed16`] for the embedded/no-FPU configuration.
///
/// # Examples
///
/// ```
/// use qma_core::{ActionOutcome, QmaAgent, QmaConfig};
/// use rand::SeedableRng;
///
/// let mut cfg = QmaConfig::default();
/// cfg.startup_subslots = 0; // act immediately
/// let mut agent: QmaAgent = QmaAgent::new(cfg);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let d = agent.decide(0, 0, &mut rng);
/// // Policy is initialised to QBackoff everywhere.
/// assert_eq!(d.action, qma_core::QmaAction::Backoff);
/// agent.complete(ActionOutcome::Backoff { overheard: false }, 1);
/// ```
#[derive(Debug, Clone)]
pub struct QmaAgent<Q: QValue = f32> {
    config: QmaConfig,
    table: QTable<Q>,
    startup_remaining: u32,
    started: bool,
    pending: Option<(u16, QmaAction)>,
    stats: AgentStats,
    last_rho: f64,
}

impl<Q: QValue> QmaAgent<Q> {
    /// Creates an agent with Q-values at `q_init` and the policy at
    /// QBackoff for every subslot (Algorithm 1's initialisation).
    pub fn new(config: QmaConfig) -> Self {
        let table = QTable::new(config.subslots, config.q_init);
        let startup_remaining = config.startup_subslots;
        QmaAgent {
            config,
            table,
            startup_remaining,
            started: false,
            pending: None,
            stats: AgentStats::default(),
            last_rho: 0.0,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &QmaConfig {
        &self.config
    }

    /// Read access to the Q-table (policy, values, Σ Q(m, π(m))).
    pub fn table(&self) -> &QTable<Q> {
        &self.table
    }

    /// Counters for metrics.
    pub fn stats(&self) -> AgentStats {
        self.stats
    }

    /// `true` while the agent is in the cautious-startup phase.
    pub fn in_startup(&self) -> bool {
        self.started && self.startup_remaining > 0
    }

    /// `true` once the agent has participated in at least one subslot.
    pub fn has_started(&self) -> bool {
        self.started
    }

    /// The ρ used by the most recent decision (Fig. 11 metric).
    pub fn last_rho(&self) -> f64 {
        self.last_rho
    }

    /// Σₘ Q(m, π(m)) — the cumulative-Q metric plotted per frame in
    /// Fig. 10 and Fig. 12.
    pub fn policy_value_sum(&self) -> f64 {
        self.table.policy_value_sum()
    }

    /// Selects the action for `subslot` given the queue-level
    /// difference `local − neighbour average` (§4.2).
    ///
    /// Must be followed by exactly one [`QmaAgent::complete`] call
    /// once the action's outcome is known.
    ///
    /// # Panics
    ///
    /// Panics if a previous decision is still awaiting its outcome.
    pub fn decide<R: Rng + ?Sized>(
        &mut self,
        subslot: u16,
        queue_diff: i32,
        rng: &mut R,
    ) -> Decision {
        assert!(
            self.pending.is_none(),
            "decide() called while an outcome is still pending"
        );
        self.started = true;
        self.stats.decisions += 1;

        if self.in_startup() {
            self.stats.startup_subslots += 1;
            self.pending = Some((subslot, QmaAction::Backoff));
            self.last_rho = 0.0;
            return Decision {
                action: QmaAction::Backoff,
                kind: DecisionKind::Startup,
                rho: 0.0,
            };
        }

        let rho = self.config.exploration.rho(queue_diff);
        self.last_rho = rho;
        let explore = rho > 0.0 && rng.gen::<f64>() < rho;
        let (action, kind) = if explore {
            self.stats.explorations += 1;
            let idx = rng.gen_range(0..QmaAction::COUNT);
            (QmaAction::from_index(idx), DecisionKind::Explore)
        } else {
            (self.table.policy(subslot), DecisionKind::Greedy)
        };
        self.pending = Some((subslot, action));
        Decision { action, kind, rho }
    }

    /// Reports the outcome of the pending action. `next_subslot` is
    /// the subslot at which the outcome became known (`mₜ₊ᵢ` in Eq. 5;
    /// values ≥ M wrap around to the next frame).
    ///
    /// During cautious startup this applies the QBackoff observation
    /// reward and, when traffic was overheard, the −2/−3 punishments
    /// that mark the subslot as occupied (§4.3).
    ///
    /// # Panics
    ///
    /// Panics if no decision is pending or the outcome's action does
    /// not match the pending action.
    pub fn complete(&mut self, outcome: ActionOutcome, next_subslot: u16) {
        let (subslot, action) = self
            .pending
            .take()
            .expect("complete() called without a pending decision");
        assert_eq!(
            outcome.action(),
            action,
            "outcome {outcome:?} does not match pending action {action}"
        );

        let reward = self.config.rewards.reward(outcome);
        self.table
            .update(subslot, action, reward, next_subslot, &self.config.params);
        self.stats.updates += 1;

        if self.in_startup() {
            if self.config.startup_punishments {
                if let ActionOutcome::Backoff { overheard: true } = outcome {
                    self.punish_occupied(subslot, next_subslot);
                }
            }
            self.startup_remaining -= 1;
        }
    }

    /// Abandons a pending decision without updating the table (used
    /// when a frame boundary interrupts an action, e.g. the CAP ends
    /// before the ACK timeout).
    pub fn abort_pending(&mut self) {
        self.pending = None;
    }

    /// Whether a decision is awaiting its outcome.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Writes the §4.3 punishments into the QCCA/QSend cells of an
    /// observed-busy subslot.
    fn punish_occupied(&mut self, subslot: u16, next_subslot: u16) {
        let p = &self.config.params;
        self.table.update(
            subslot,
            QmaAction::Cca,
            self.config.rewards.startup_punish_cca,
            next_subslot,
            p,
        );
        self.table.update(
            subslot,
            QmaAction::Send,
            self.config.rewards.startup_punish_send,
            next_subslot,
            p,
        );
        self.stats.updates += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn no_startup_config() -> QmaConfig {
        QmaConfig {
            startup_subslots: 0,
            ..QmaConfig::default()
        }
    }

    #[test]
    fn default_config_matches_paper() {
        let c = QmaConfig::default();
        assert_eq!(c.subslots, 54);
        assert_eq!(c.params.alpha, 0.5);
        assert_eq!(c.params.gamma, 0.9);
        assert_eq!(c.q_init, -10.0);
        assert!(c.startup_punishments);
    }

    #[test]
    fn greedy_follows_initial_policy() {
        let mut agent: QmaAgent = QmaAgent::new(no_startup_config());
        let mut rng = StdRng::seed_from_u64(1);
        let d = agent.decide(7, 0, &mut rng); // diff 0 → ρ=0 → greedy
        assert_eq!(d.action, QmaAction::Backoff);
        assert_eq!(d.kind, DecisionKind::Greedy);
        assert_eq!(d.rho, 0.0);
        agent.complete(ActionOutcome::Backoff { overheard: false }, 8);
    }

    #[test]
    fn exploration_rate_is_respected() {
        let mut agent: QmaAgent = QmaAgent::new(no_startup_config());
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mut explored = 0u32;
        for i in 0..n {
            let m = (i % 54) as u16;
            let d = agent.decide(m, 8, &mut rng); // ρ=0.3
            if d.kind == DecisionKind::Explore {
                explored += 1;
            }
            assert_eq!(d.rho, 0.3);
            // Feed a failure outcome matching whatever was chosen so
            // the policy stays at QBackoff throughout.
            let outcome = match d.action {
                QmaAction::Backoff => ActionOutcome::Backoff { overheard: false },
                QmaAction::Cca => ActionOutcome::CcaTx { acked: false },
                QmaAction::Send => ActionOutcome::SendTx { acked: false },
            };
            agent.complete(outcome, m + 1);
        }
        let rate = explored as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "exploration rate {rate}");
        assert_eq!(agent.stats().explorations as u32, explored);
    }

    #[test]
    fn startup_forces_backoff_and_punishes() {
        let cfg = QmaConfig {
            startup_subslots: 3,
            ..QmaConfig::default()
        };
        let mut agent: QmaAgent = QmaAgent::new(cfg);
        let mut rng = StdRng::seed_from_u64(3);

        assert!(!agent.has_started());
        let d = agent.decide(0, 8, &mut rng);
        assert!(agent.in_startup());
        assert_eq!(d.kind, DecisionKind::Startup);
        assert_eq!(d.action, QmaAction::Backoff);
        // Overheard traffic: B rewarded, C/S punished below init.
        agent.complete(ActionOutcome::Backoff { overheard: true }, 1);
        assert!(agent.table().q(0, QmaAction::Backoff) > -10.0);
        assert!(agent.table().q(0, QmaAction::Cca) < -10.0);
        assert!(agent.table().q(0, QmaAction::Send) < -10.0);

        // Two more participated subslots end the startup.
        for m in 1..3u16 {
            let d = agent.decide(m, 8, &mut rng);
            assert_eq!(d.kind, DecisionKind::Startup);
            agent.complete(ActionOutcome::Backoff { overheard: false }, m + 1);
        }
        assert!(!agent.in_startup());
        let d = agent.decide(3, 0, &mut rng);
        assert_ne!(d.kind, DecisionKind::Startup);
    }

    #[test]
    fn startup_without_punishments() {
        let cfg = QmaConfig {
            startup_subslots: 1,
            startup_punishments: false,
            ..QmaConfig::default()
        };
        let mut agent: QmaAgent = QmaAgent::new(cfg);
        let mut rng = StdRng::seed_from_u64(4);
        agent.decide(0, 8, &mut rng);
        agent.complete(ActionOutcome::Backoff { overheard: true }, 1);
        assert_eq!(agent.table().q(0, QmaAction::Cca), -10.0);
        assert_eq!(agent.table().q(0, QmaAction::Send), -10.0);
    }

    #[test]
    #[should_panic(expected = "still pending")]
    fn double_decide_panics() {
        let mut agent: QmaAgent = QmaAgent::new(no_startup_config());
        let mut rng = StdRng::seed_from_u64(5);
        agent.decide(0, 0, &mut rng);
        agent.decide(1, 0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "without a pending decision")]
    fn complete_without_decide_panics() {
        let mut agent: QmaAgent = QmaAgent::new(no_startup_config());
        agent.complete(ActionOutcome::Backoff { overheard: false }, 0);
    }

    #[test]
    #[should_panic(expected = "does not match pending action")]
    fn mismatched_outcome_panics() {
        let mut agent: QmaAgent = QmaAgent::new(no_startup_config());
        let mut rng = StdRng::seed_from_u64(6);
        let d = agent.decide(0, 0, &mut rng);
        assert_eq!(d.action, QmaAction::Backoff);
        agent.complete(ActionOutcome::SendTx { acked: true }, 1);
    }

    #[test]
    fn abort_pending_allows_new_decision() {
        let mut agent: QmaAgent = QmaAgent::new(no_startup_config());
        let mut rng = StdRng::seed_from_u64(7);
        agent.decide(0, 0, &mut rng);
        assert!(agent.has_pending());
        agent.abort_pending();
        assert!(!agent.has_pending());
        agent.decide(1, 0, &mut rng); // no panic
    }

    #[test]
    fn successful_transmissions_become_policy() {
        let mut agent: QmaAgent = QmaAgent::new(no_startup_config());
        let mut rng = StdRng::seed_from_u64(8);
        // Keep exploring at max rate; every transmission succeeds.
        // The policy for the subslot must converge to a transmitting
        // action (QSend's +4 dominates in the long run, but a run of
        // lucky QCCAs may legitimately hold the slot too).
        for _ in 0..1000 {
            let d = agent.decide(5, 8, &mut rng);
            let outcome = match d.action {
                QmaAction::Backoff => ActionOutcome::Backoff { overheard: false },
                QmaAction::Cca => ActionOutcome::CcaTx { acked: true },
                QmaAction::Send => ActionOutcome::SendTx { acked: true },
            };
            agent.complete(outcome, 6);
        }
        assert!(
            agent.table().policy(5).may_transmit(),
            "policy {:?} never claimed the successful slot",
            agent.table().policy(5)
        );
        // With everything succeeding, QSend's fixed point
        // q = 0.5q + 0.5(4 + 0.9·q) beats QCCA's; after enough trials
        // the policy is QSend specifically.
        assert_eq!(agent.table().policy(5), QmaAction::Send);
        // Greedy decision now picks it.
        let d = agent.decide(5, 0, &mut rng);
        assert_eq!(d.action, QmaAction::Send);
        agent.complete(ActionOutcome::SendTx { acked: true }, 6);
    }

    #[test]
    fn stats_accumulate() {
        let mut agent: QmaAgent = QmaAgent::new(no_startup_config());
        let mut rng = StdRng::seed_from_u64(9);
        for m in 0..10u16 {
            agent.decide(m, 0, &mut rng);
            agent.complete(ActionOutcome::Backoff { overheard: false }, m + 1);
        }
        let s = agent.stats();
        assert_eq!(s.decisions, 10);
        assert_eq!(s.updates, 10);
        assert_eq!(s.explorations, 0);
    }

    #[test]
    fn policy_value_sum_starts_at_init_times_subslots() {
        let agent: QmaAgent = QmaAgent::new(QmaConfig::default());
        assert_eq!(agent.policy_value_sum(), -10.0 * 54.0);
    }

    #[test]
    fn fixed_point_agent_learns_like_float() {
        use crate::value::Fixed16;
        let mut cfg = no_startup_config();
        cfg.subslots = 4;
        let mut f_agent: QmaAgent<f32> = QmaAgent::new(cfg.clone());
        let mut x_agent: QmaAgent<Fixed16> = QmaAgent::new(cfg);
        // Drive both with identical deterministic outcome sequences.
        let mut rng_f = StdRng::seed_from_u64(10);
        let mut rng_x = StdRng::seed_from_u64(10);
        for i in 0..200u32 {
            let m = (i % 4) as u16;
            let df = f_agent.decide(m, 4, &mut rng_f);
            let dx = x_agent.decide(m, 4, &mut rng_x);
            assert_eq!(df.action, dx.action, "diverged at step {i}");
            let acked = i % 3 == 0;
            let outcome = match df.action {
                QmaAction::Backoff => ActionOutcome::Backoff { overheard: acked },
                QmaAction::Cca => ActionOutcome::CcaTx { acked },
                QmaAction::Send => ActionOutcome::SendTx { acked },
            };
            f_agent.complete(outcome, m + 1);
            x_agent.complete(outcome, m + 1);
        }
        for m in 0..4u16 {
            assert_eq!(
                f_agent.table().policy(m),
                x_agent.table().policy(m),
                "policy diverged at subslot {m}"
            );
        }
    }
}
