//! Parameter-based exploration (paper §4.2, Fig. 4).
//!
//! Instead of ε-greedy (which decays once and can never react to a
//! changed environment) or a constant rate (too slow or too noisy),
//! QMA derives the random-action probability ρ from *local pressure*:
//! the difference between the node's own queue level and the average
//! queue level of its neighbours (piggybacked on data frames).
//!
//! * Queues empty → stable state → ρ = 0, act greedily.
//! * Own queue filling while neighbours drain → the node needs more
//!   subslots → explore, increasingly aggressively.
//! * Neighbours' queues higher than ours → *stop* exploring and let
//!   them claim slots (ρ = 0).
//!
//! ρ is looked up from a small table — "stored in a table and can be
//! used efficiently by resource-restricted devices without any
//! computational overhead".

/// The ρ lookup table of Fig. 4.
///
/// # Examples
///
/// ```
/// use qma_core::ExplorationTable;
///
/// let t = ExplorationTable::paper();
/// assert_eq!(t.rho(-3), 0.0); // neighbours more loaded → defer
/// assert_eq!(t.rho(0), 0.0);  // stable
/// assert_eq!(t.rho(6), 0.1);  // the maximum observed in Fig. 11
/// assert_eq!(t.rho(8), 0.3);  // full queue
/// assert_eq!(t.rho(99), 0.3); // clamped
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationTable {
    /// `rho[d]` is the exploration probability for a queue difference
    /// of `d` (index 0 → difference 0). Negative differences map to 0.
    table: Vec<f64>,
}

impl ExplorationTable {
    /// The paper's table (Fig. 4) for a maximum queue level of 8:
    /// ρ(0..=8) = 0, 0.0001, 0.001, 0.008, 0.02, 0.05, 0.1, 0.18, 0.3.
    pub fn paper() -> Self {
        ExplorationTable {
            table: vec![0.0, 0.0001, 0.001, 0.008, 0.02, 0.05, 0.1, 0.18, 0.3],
        }
    }

    /// A table from explicit values; `table[d]` is ρ for difference
    /// `d`.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty or any entry is outside `[0, 1]`.
    pub fn from_values(table: Vec<f64>) -> Self {
        assert!(!table.is_empty(), "exploration table must not be empty");
        assert!(
            table.iter().all(|&p| (0.0..=1.0).contains(&p)),
            "exploration probabilities must lie in [0, 1]"
        );
        ExplorationTable { table }
    }

    /// A constant exploration rate (the baseline QMA compares
    /// against in §4.2; used by ablation benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn constant(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        ExplorationTable { table: vec![rate] }
    }

    /// Never explore (greedy policy only).
    pub fn disabled() -> Self {
        ExplorationTable { table: vec![0.0] }
    }

    /// The exploration probability for a queue-level difference
    /// `local − neighbour_average`, clamped to the table range.
    /// Negative differences yield 0 ("give neighbouring nodes a
    /// chance to allocate additional slots").
    pub fn rho(&self, queue_diff: i32) -> f64 {
        if queue_diff < 0 {
            return if self.table.len() == 1 {
                // A constant-rate table ignores the queue signal.
                self.table[0]
            } else {
                0.0
            };
        }
        let idx = (queue_diff as usize).min(self.table.len() - 1);
        self.table[idx]
    }

    /// Largest ρ the table can produce.
    pub fn max_rho(&self) -> f64 {
        self.table.iter().copied().fold(0.0, f64::max)
    }
}

impl Default for ExplorationTable {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_values() {
        let t = ExplorationTable::paper();
        let expected = [0.0, 0.0001, 0.001, 0.008, 0.02, 0.05, 0.1, 0.18, 0.3];
        for (d, &rho) in expected.iter().enumerate() {
            assert_eq!(t.rho(d as i32), rho, "difference {d}");
        }
    }

    #[test]
    fn negative_difference_suppresses_exploration() {
        let t = ExplorationTable::paper();
        for d in [-1, -4, -8, -100] {
            assert_eq!(t.rho(d), 0.0);
        }
    }

    #[test]
    fn clamps_above_table() {
        let t = ExplorationTable::paper();
        assert_eq!(t.rho(9), 0.3);
        assert_eq!(t.rho(1000), 0.3);
        assert_eq!(t.max_rho(), 0.3);
    }

    #[test]
    fn monotone_nondecreasing() {
        let t = ExplorationTable::paper();
        let mut last = -1.0;
        for d in 0..=8 {
            let r = t.rho(d);
            assert!(r >= last, "not monotone at {d}");
            last = r;
        }
    }

    #[test]
    fn constant_table_ignores_queue_signal() {
        let t = ExplorationTable::constant(0.05);
        assert_eq!(t.rho(-5), 0.05);
        assert_eq!(t.rho(0), 0.05);
        assert_eq!(t.rho(8), 0.05);
    }

    #[test]
    fn disabled_never_explores() {
        let t = ExplorationTable::disabled();
        for d in -8..=8 {
            assert_eq!(t.rho(d), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn invalid_probability_rejected() {
        let _ = ExplorationTable::from_values(vec![0.0, 1.5]);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_table_rejected() {
        let _ = ExplorationTable::from_values(vec![]);
    }
}
