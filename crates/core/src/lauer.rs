//! Distributed Q-learning for cooperative multi-agent systems
//! (paper §3.1, after Lauer & Riedmiller 2000), including QMA's
//! stochastic-environment extension (§3.1.1, Eq. 4/5).
//!
//! Each agent keeps only a *local* Q-table over its own actions and
//! updates optimistically — it stores the best reward combination it
//! has ever experienced, implicitly assuming all other agents act to
//! maximise the shared global reward (Eq. 2):
//!
//! ```text
//! Q(s,a) ← max{ Q(s,a), R + γ·maxₐ Q(s',a) }
//! ```
//!
//! Two refinements from the paper:
//!
//! * a **policy table** updated only on strict improvement, so agents
//!   don't flap between duplicate optima (Eq. 3, Table 2's problem);
//! * a **penalty ξ** subtracted when the update would lower the value
//!   (Eq. 4), so that in stochastic games an action that *sometimes*
//!   won big but keeps colliding decays and is abandoned — Lauer &
//!   Riedmiller "mention this problem but do not propose a solution"
//!   (Table 3's problem).
//!
//! This module reproduces the single-state (stateless) setting used
//! by the paper's Tables 1–3. The full multi-state machinery lives in
//! [`crate::qtable`]; here the focus is on the multi-agent dynamics,
//! with a [`MatrixGame`] harness for repeated cooperative games.

use rand::Rng;

/// A stateless cooperative learner over `n_actions` actions
/// implementing Eq. 2/3/4.
#[derive(Debug, Clone, PartialEq)]
pub struct CooperativeAgent {
    q: Vec<f64>,
    policy: usize,
    xi: f64,
    gamma: f64,
}

impl CooperativeAgent {
    /// Creates an agent with all Q-values at `q_init` and the policy
    /// at action 0.
    ///
    /// # Panics
    ///
    /// Panics if `n_actions` is zero or ξ is negative.
    pub fn new(n_actions: usize, q_init: f64, xi: f64) -> Self {
        assert!(n_actions > 0, "need at least one action");
        assert!(xi >= 0.0, "penalty must be non-negative");
        CooperativeAgent {
            q: vec![q_init; n_actions],
            policy: 0,
            xi,
            gamma: 0.0, // stateless: no future term
        }
    }

    /// Number of actions.
    pub fn n_actions(&self) -> usize {
        self.q.len()
    }

    /// The local Q-value of an action.
    pub fn q(&self, action: usize) -> f64 {
        self.q[action]
    }

    /// The current policy action.
    pub fn policy(&self) -> usize {
        self.policy
    }

    /// ε-free greedy selection with explicit exploration probability.
    pub fn select<R: Rng + ?Sized>(&self, explore_prob: f64, rng: &mut R) -> usize {
        if explore_prob > 0.0 && rng.gen::<f64>() < explore_prob {
            rng.gen_range(0..self.q.len())
        } else {
            self.policy
        }
    }

    /// Applies the optimistic update of Eq. 2 (ξ = 0) or Eq. 4
    /// (ξ > 0) for a received global reward, then the strict-
    /// improvement policy rule of Eq. 3.
    pub fn update(&mut self, action: usize, reward: f64) {
        // Stateless: target is just the reward (γ·maxQ(s') has no
        // successor state; the paper's Tables 1–3 use this setting).
        let target = reward + self.gamma;
        let old = self.q[action];
        self.q[action] = if self.xi > 0.0 {
            (old - self.xi).max(target)
        } else {
            old.max(target)
        };
        self.refresh_policy();
    }

    fn refresh_policy(&mut self) {
        let current_q = self.q[self.policy];
        let mut best = self.policy;
        let mut best_q = current_q;
        for (a, &q) in self.q.iter().enumerate() {
            if q > best_q {
                best = a;
                best_q = q;
            }
        }
        self.policy = best;
    }
}

/// A repeated cooperative matrix game: `n` agents, a shared reward
/// that depends on the joint action.
///
/// # Examples
///
/// Table 1's game: both agents must pick action 1 (reward 10);
/// mixed choices are punished.
///
/// ```
/// use qma_core::lauer::{CooperativeAgent, MatrixGame};
/// use rand::SeedableRng;
///
/// let game = MatrixGame::table1();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut agents = vec![
///     CooperativeAgent::new(2, -100.0, 0.0),
///     CooperativeAgent::new(2, -100.0, 0.0),
/// ];
/// for _ in 0..200 {
///     game.play_round(&mut agents, 0.5, &mut rng);
/// }
/// assert_eq!(agents[0].policy(), 1);
/// assert_eq!(agents[1].policy(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MatrixGame {
    n_agents: usize,
    n_actions: usize,
    /// Global reward indexed by joint action
    /// (`a0·n_actionsⁿ⁻¹ + … + aₙ₋₁`).
    rewards: Vec<f64>,
}

impl MatrixGame {
    /// Builds a game from a dense joint-reward table.
    ///
    /// # Panics
    ///
    /// Panics if `rewards.len() != n_actions.pow(n_agents)`.
    pub fn new(n_agents: usize, n_actions: usize, rewards: Vec<f64>) -> Self {
        assert_eq!(
            rewards.len(),
            n_actions.pow(n_agents as u32),
            "reward table size mismatch"
        );
        MatrixGame {
            n_agents,
            n_actions,
            rewards,
        }
    }

    /// The paper's Table 1: global Q-table
    /// `[(a',a')=1, (a',a'')=−1, (a'',a')=−1, (a'',a'')=10]`.
    pub fn table1() -> Self {
        MatrixGame::new(2, 2, vec![1.0, -1.0, -1.0, 10.0])
    }

    /// The paper's Table 2: duplicate optima —
    /// `[(a',a')=10, (a',a'')=−1, (a'',a')=−1, (a'',a'')=10]`.
    pub fn table2() -> Self {
        MatrixGame::new(2, 2, vec![10.0, -1.0, -1.0, 10.0])
    }

    /// The paper's Table 3: shared-resource acquisition —
    /// `[(a',a')=−1, (a',a'')=1, (a'',a')=1, (a'',a'')=0]` where
    /// action 0 (a') acquires the resource and action 1 (a'') waits.
    pub fn table3() -> Self {
        MatrixGame::new(2, 2, vec![-1.0, 1.0, 1.0, 0.0])
    }

    /// Number of agents.
    pub fn n_agents(&self) -> usize {
        self.n_agents
    }

    /// The global reward for a joint action.
    ///
    /// # Panics
    ///
    /// Panics if the joint action has the wrong arity or any action
    /// index is out of range.
    pub fn reward(&self, joint: &[usize]) -> f64 {
        assert_eq!(joint.len(), self.n_agents, "joint action arity");
        let mut idx = 0usize;
        for &a in joint {
            assert!(a < self.n_actions, "action {a} out of range");
            idx = idx * self.n_actions + a;
        }
        self.rewards[idx]
    }

    /// Plays one round: each agent selects (with exploration), the
    /// global reward is computed and every agent updates with it.
    /// Returns the joint action and the reward.
    pub fn play_round<R: Rng + ?Sized>(
        &self,
        agents: &mut [CooperativeAgent],
        explore_prob: f64,
        rng: &mut R,
    ) -> (Vec<usize>, f64) {
        assert_eq!(agents.len(), self.n_agents, "agent count mismatch");
        let joint: Vec<usize> = agents
            .iter()
            .map(|ag| ag.select(explore_prob, rng))
            .collect();
        let r = self.reward(&joint);
        for (ag, &a) in agents.iter_mut().zip(&joint) {
            ag.update(a, r);
        }
        (joint, r)
    }

    /// Plays a stochastic variant of [`MatrixGame::table3`]: with
    /// probability `no_need`, an agent that chose "acquire" (action 0)
    /// does not actually use the resource this round — the situation
    /// of §3.1.1 in which pure optimistic updates get stuck.
    pub fn play_round_stochastic_acquisition<R: Rng + ?Sized>(
        agents: &mut [CooperativeAgent],
        no_need: f64,
        explore_prob: f64,
        rng: &mut R,
    ) -> (Vec<usize>, f64) {
        assert_eq!(agents.len(), 2);
        let chosen: Vec<usize> = agents
            .iter()
            .map(|ag| ag.select(explore_prob, rng))
            .collect();
        // An agent that chose to acquire may turn out not to need the
        // resource; its *effective* action becomes "wait".
        let effective: Vec<usize> = chosen
            .iter()
            .map(|&a| {
                if a == 0 && rng.gen::<f64>() < no_need {
                    1
                } else {
                    a
                }
            })
            .collect();
        let r = MatrixGame::table3().reward(&effective);
        // Each agent updates the action it *chose* with the reward it
        // *experienced* — exactly the mismatch that breaks Eq. 2.
        for (ag, &a) in agents.iter_mut().zip(&chosen) {
            ag.update(a, r);
        }
        (chosen, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_game(game: &MatrixGame, xi: f64, rounds: usize, seed: u64) -> Vec<CooperativeAgent> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agents: Vec<CooperativeAgent> = (0..game.n_agents())
            .map(|_| CooperativeAgent::new(2, -100.0, xi))
            .collect();
        for _ in 0..rounds {
            game.play_round(&mut agents, 0.3, &mut rng);
        }
        agents
    }

    #[test]
    fn table1_local_tables_store_max_rewards() {
        // The paper's Table 1: local tables become [1, 10] for both
        // agents after full exploration.
        let agents = run_game(&MatrixGame::table1(), 0.0, 500, 1);
        for ag in &agents {
            assert_eq!(ag.q(0), 1.0, "a' must store its best joint reward");
            assert_eq!(ag.q(1), 10.0, "a'' must store the optimum");
            assert_eq!(ag.policy(), 1);
        }
    }

    #[test]
    fn table2_duplicate_optima_are_coordinated() {
        // Both (a',a') and (a'',a'') yield 10; without the policy rule
        // agents could mix and score −1. With Eq. 3 they settle on one
        // optimum together.
        for seed in 0..10 {
            let game = MatrixGame::table2();
            let agents = run_game(&game, 0.0, 500, seed);
            let joint = [agents[0].policy(), agents[1].policy()];
            assert_eq!(
                game.reward(&joint),
                10.0,
                "seed {seed}: agents failed to coordinate: {joint:?}"
            );
        }
    }

    #[test]
    fn table3_without_penalty_gets_stuck_optimistic() {
        // §3.1.1: with stochastic resource need and ξ=0, both agents
        // pin Q(a')=1 (each once experienced acquiring alone) and
        // collide forever.
        // Seed chosen so both agents experience "acquired alone" and
        // lock in; other seeds can leave one agent on a'' since Q(a'')
        // also saturates at 1 (the deadlock just manifests later).
        let mut rng = StdRng::seed_from_u64(1);
        let mut agents = vec![
            CooperativeAgent::new(2, -100.0, 0.0),
            CooperativeAgent::new(2, -100.0, 0.0),
        ];
        for _ in 0..2000 {
            MatrixGame::play_round_stochastic_acquisition(&mut agents, 0.2, 0.2, &mut rng);
        }
        // Both stuck preferring acquisition.
        assert_eq!(agents[0].policy(), 0);
        assert_eq!(agents[1].policy(), 0);
        assert_eq!(agents[0].q(0), 1.0);
        assert_eq!(agents[1].q(0), 1.0);
    }

    #[test]
    fn table3_with_penalty_resolves_contention() {
        // With ξ > 0 the colliding action decays; at least one agent
        // backs off so the final joint policy is collision-free.
        let mut successes = 0;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut agents = vec![
                CooperativeAgent::new(2, -100.0, 0.5),
                CooperativeAgent::new(2, -100.0, 0.5),
            ];
            for _ in 0..3000 {
                MatrixGame::play_round_stochastic_acquisition(&mut agents, 0.2, 0.05, &mut rng);
            }
            let joint = [agents[0].policy(), agents[1].policy()];
            if joint != [0, 0] {
                successes += 1;
            }
        }
        assert!(
            successes >= 8,
            "penalty failed to break the deadlock in {}/10 runs",
            10 - successes
        );
    }

    #[test]
    fn policy_only_changes_on_strict_improvement() {
        let mut ag = CooperativeAgent::new(3, -10.0, 0.0);
        ag.update(1, 5.0);
        assert_eq!(ag.policy(), 1);
        ag.update(2, 5.0); // tie → keep 1
        assert_eq!(ag.policy(), 1);
        ag.update(2, 5.1); // strict → switch
        assert_eq!(ag.policy(), 2);
    }

    #[test]
    fn optimistic_update_never_decreases_without_penalty() {
        let mut ag = CooperativeAgent::new(2, -10.0, 0.0);
        ag.update(0, 3.0);
        ag.update(0, -100.0);
        assert_eq!(ag.q(0), 3.0);
    }

    #[test]
    fn penalty_decreases_on_bad_rounds() {
        let mut ag = CooperativeAgent::new(2, -10.0, 1.0);
        ag.update(0, 3.0);
        ag.update(0, -100.0);
        assert_eq!(ag.q(0), 2.0); // 3 − ξ
        ag.update(0, 3.0); // restored by a good round
        assert_eq!(ag.q(0), 3.0);
    }

    #[test]
    fn reward_indexing() {
        let g = MatrixGame::table1();
        assert_eq!(g.reward(&[0, 0]), 1.0);
        assert_eq!(g.reward(&[0, 1]), -1.0);
        assert_eq!(g.reward(&[1, 0]), -1.0);
        assert_eq!(g.reward(&[1, 1]), 10.0);
    }

    #[test]
    #[should_panic(expected = "reward table size mismatch")]
    fn bad_table_size_panics() {
        let _ = MatrixGame::new(2, 2, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "joint action arity")]
    fn bad_arity_panics() {
        let _ = MatrixGame::table1().reward(&[0]);
    }
}
