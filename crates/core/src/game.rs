//! An abstract "subslot game" exercising QMA's learning dynamics
//! without a radio simulator.
//!
//! All agents are co-located (single collision domain) and play the
//! Table 4 interaction of [`crate::interaction`] in every subslot of
//! a repeating frame. Packets arrive Bernoulli per subslot (or queues
//! are kept saturated), queue levels are exchanged perfectly — the
//! idealised version of the queue-level piggybacking of §4.2.
//!
//! The game is used by unit/property tests and by benchmarks to study
//! convergence (how many frames until a collision-free schedule) in
//! isolation from PHY effects, in the spirit of the paper's Fig. 5
//! walkthrough.

use rand::Rng;

use crate::action::QmaAction;
use crate::agent::{QmaAgent, QmaConfig};
use crate::interaction::resolve;
use crate::value::QValue;

/// Configuration of the abstract game.
#[derive(Debug, Clone, PartialEq)]
pub struct GameConfig {
    /// Number of co-located agents.
    pub agents: usize,
    /// Agent configuration (subslot count lives here).
    pub agent: QmaConfig,
    /// Queue capacity per agent (the paper uses 8).
    pub queue_capacity: u32,
    /// Per-subslot packet arrival probability per agent; `None`
    /// keeps queues saturated.
    pub arrival_prob: Option<f64>,
    /// Model the data sink as an additional queue-level-0 neighbour
    /// of every agent (the paper's scenarios are data-collection
    /// trees/stars: the sink's empty queue is what keeps the
    /// neighbour average below a saturated node's own level and
    /// thereby sustains exploration, §4.2).
    pub include_sink: bool,
}

impl Default for GameConfig {
    fn default() -> Self {
        GameConfig {
            agents: 3,
            agent: QmaConfig {
                subslots: 8,
                startup_subslots: 0,
                ..QmaConfig::default()
            },
            queue_capacity: 8,
            arrival_prob: None,
            include_sink: true,
        }
    }
}

/// Statistics of one played frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameStats {
    /// Subslots with a successful (sole) transmission.
    pub successes: u32,
    /// Subslots in which two or more transmissions collided.
    pub collisions: u32,
    /// Subslots in which no agent transmitted.
    pub idle: u32,
}

/// The repeated multi-agent subslot game.
#[derive(Debug, Clone)]
pub struct SlotGame<Q: QValue = f32> {
    config: GameConfig,
    agents: Vec<QmaAgent<Q>>,
    queues: Vec<u32>,
    frames_played: u64,
    total: FrameStats,
}

impl<Q: QValue> SlotGame<Q> {
    /// Creates a game with fresh agents.
    ///
    /// # Panics
    ///
    /// Panics if `config.agents` is zero.
    pub fn new(config: GameConfig) -> Self {
        assert!(config.agents > 0, "need at least one agent");
        let agents = (0..config.agents)
            .map(|_| QmaAgent::new(config.agent.clone()))
            .collect();
        let queues = vec![
            if config.arrival_prob.is_none() {
                config.queue_capacity
            } else {
                0
            };
            config.agents
        ];
        SlotGame {
            config,
            agents,
            queues,
            frames_played: 0,
            total: FrameStats::default(),
        }
    }

    /// The agents (for policy inspection).
    pub fn agents(&self) -> &[QmaAgent<Q>] {
        &self.agents
    }

    /// Current queue levels.
    pub fn queues(&self) -> &[u32] {
        &self.queues
    }

    /// Frames played so far.
    pub fn frames_played(&self) -> u64 {
        self.frames_played
    }

    /// Totals across all played frames.
    pub fn totals(&self) -> FrameStats {
        self.total
    }

    /// Plays one frame (all subslots) and returns its statistics.
    pub fn step_frame<R: Rng + ?Sized>(&mut self, rng: &mut R) -> FrameStats {
        let subslots = self.config.agent.subslots;
        let mut stats = FrameStats::default();
        for m in 0..subslots {
            self.arrivals(rng);
            let stats_m = self.step_subslot(m, rng);
            stats.successes += stats_m.successes;
            stats.collisions += stats_m.collisions;
            stats.idle += stats_m.idle;
        }
        self.frames_played += 1;
        self.total.successes += stats.successes;
        self.total.collisions += stats.collisions;
        self.total.idle += stats.idle;
        stats
    }

    /// Plays `n` frames, returning the aggregate statistics.
    pub fn run_frames<R: Rng + ?Sized>(&mut self, n: u64, rng: &mut R) -> FrameStats {
        let mut agg = FrameStats::default();
        for _ in 0..n {
            let s = self.step_frame(rng);
            agg.successes += s.successes;
            agg.collisions += s.collisions;
            agg.idle += s.idle;
        }
        agg
    }

    /// Returns `true` if the greedy policies are collision-free: no
    /// subslot where two or more agents would transmit, considering
    /// that QCCA defers to QSend but concurrent QCCAs collide.
    pub fn policies_collision_free(&self) -> bool {
        let subslots = self.config.agent.subslots;
        for m in 0..subslots {
            let actions: Vec<QmaAction> = self.agents.iter().map(|a| a.table().policy(m)).collect();
            if resolve(&actions).collided() {
                return false;
            }
        }
        true
    }

    /// How many subslots each agent's policy claims for transmission.
    pub fn tx_slots_per_agent(&self) -> Vec<u32> {
        let subslots = self.config.agent.subslots;
        self.agents
            .iter()
            .map(|a| {
                (0..subslots)
                    .filter(|&m| a.table().policy(m).may_transmit())
                    .count() as u32
            })
            .collect()
    }

    fn arrivals<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        match self.config.arrival_prob {
            None => {
                for q in &mut self.queues {
                    *q = self.config.queue_capacity; // saturated
                }
            }
            Some(p) => {
                for q in &mut self.queues {
                    if rng.gen::<f64>() < p {
                        *q = (*q + 1).min(self.config.queue_capacity);
                    }
                }
            }
        }
    }

    fn step_subslot<R: Rng + ?Sized>(&mut self, m: u16, rng: &mut R) -> FrameStats {
        let n = self.agents.len();
        // Perfect queue-level exchange: each agent compares its own
        // level with the average of all other neighbours — including
        // the always-empty sink when configured.
        let total_queue: u32 = self.queues.iter().sum();
        let sink = usize::from(self.config.include_sink);

        let mut participants: Vec<usize> = Vec::with_capacity(n);
        let mut actions: Vec<QmaAction> = Vec::with_capacity(n);
        for i in 0..n {
            if self.queues[i] == 0 {
                continue;
            }
            let neighbours = n - 1 + sink;
            let others_avg = if neighbours > 0 {
                (total_queue - self.queues[i]) as f64 / neighbours as f64
            } else {
                0.0
            };
            let diff = (self.queues[i] as f64 - others_avg).round() as i32;
            let d = self.agents[i].decide(m, diff, rng);
            participants.push(i);
            actions.push(d.action);
        }

        let interaction = resolve(&actions);
        let next = m + 1; // abstract game: every action completes in 1 subslot
        for (k, &i) in participants.iter().enumerate() {
            let outcome = interaction.outcomes[k];
            self.agents[i].complete(outcome, next);
            // A successful transmission consumes one packet.
            if outcome.transmitted() && interaction.winner == Some(k) {
                self.queues[i] -= 1;
            }
        }

        FrameStats {
            successes: u32::from(interaction.winner.is_some()),
            collisions: u32::from(interaction.collided()),
            idle: u32::from(interaction.transmitters == 0 && !participants.is_empty()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn saturated_game(agents: usize, subslots: u16) -> SlotGame {
        let mut cfg = GameConfig {
            agents,
            ..GameConfig::default()
        };
        cfg.agent.subslots = subslots;
        SlotGame::new(cfg)
    }

    #[test]
    fn agents_learn_collision_free_schedule() {
        // 3 saturated agents, 8 subslots: after enough frames the
        // learned policies must not collide.
        let mut converged = 0;
        for seed in 0..5 {
            let mut game = saturated_game(3, 8);
            let mut rng = StdRng::seed_from_u64(seed);
            game.run_frames(3000, &mut rng);
            if game.policies_collision_free() {
                converged += 1;
            }
        }
        assert!(converged >= 4, "only {converged}/5 runs converged");
    }

    #[test]
    fn saturated_agents_each_claim_slots() {
        let mut game = saturated_game(3, 9);
        let mut rng = StdRng::seed_from_u64(42);
        game.run_frames(3000, &mut rng);
        let slots = game.tx_slots_per_agent();
        // Nobody starves: every agent holds at least one tx subslot.
        for (i, &s) in slots.iter().enumerate() {
            assert!(s >= 1, "agent {i} starved: {slots:?}");
        }
    }

    #[test]
    fn success_rate_improves_with_learning() {
        let mut game = saturated_game(3, 8);
        let mut rng = StdRng::seed_from_u64(7);
        let early = game.run_frames(50, &mut rng);
        game.run_frames(3000, &mut rng);
        let late = game.run_frames(50, &mut rng);
        assert!(
            late.successes > early.successes + 50,
            "no improvement: early {early:?} late {late:?}"
        );
        // Collisions per success must drop sharply (ongoing
        // exploration keeps the absolute count above zero).
        let early_ratio = early.collisions as f64 / early.successes.max(1) as f64;
        let late_ratio = late.collisions as f64 / late.successes.max(1) as f64;
        assert!(
            late_ratio < early_ratio || early.collisions == 0,
            "collision ratio did not fall: early {early:?} late {late:?}"
        );
    }

    #[test]
    fn greedy_send_rewards_commit_harder_to_contested_slots() {
        // §4.1: "increasing the reward for a successful transmission
        // using QSend to 8 results in a policy where every node
        // executes QSend in every subslot". The mechanism: a lucky
        // success inflates the QSend cell so far that the ξ decay
        // needs many more collisions to displace it — so nodes keep
        // sending into occupied slots. Measure exactly that.
        use crate::qtable::{QTable, UpdateParams};
        use crate::reward::RewardTable;

        let collisions_to_release = |rewards: RewardTable| -> u32 {
            let p = UpdateParams::default(); // α=0.5, γ=0.9, ξ=1
            let mut table: QTable<f32> = QTable::new(4, -10.0);
            // Three lucky successes in slot 0 (the slot's owner had an
            // empty queue by chance).
            for _ in 0..3 {
                table.update(0, QmaAction::Send, rewards.send_success, 1, &p);
            }
            assert_eq!(table.policy(0), QmaAction::Send);
            // Now the slot's real owner returns: every send collides.
            let mut n = 0;
            while table.policy(0) == QmaAction::Send {
                table.update(0, QmaAction::Send, rewards.send_fail, 1, &p);
                n += 1;
                assert!(n < 1000, "never released the slot");
            }
            n
        };

        let paper = collisions_to_release(RewardTable::paper());
        let greedy = collisions_to_release(RewardTable::greedy_send());
        assert!(
            greedy > paper,
            "greedy rewards must commit harder: greedy {greedy} vs paper {paper}"
        );
    }

    #[test]
    fn light_traffic_single_agent_uses_channel_freely() {
        let mut cfg = GameConfig {
            agents: 1,
            arrival_prob: Some(0.5),
            ..GameConfig::default()
        };
        cfg.agent.subslots = 4;
        let mut game: SlotGame = SlotGame::new(cfg);
        let mut rng = StdRng::seed_from_u64(11);
        let stats = game.run_frames(2000, &mut rng);
        // A single agent can never collide.
        assert_eq!(stats.collisions, 0);
        assert!(stats.successes > 0);
    }

    #[test]
    fn queue_levels_bounded() {
        let mut cfg = GameConfig {
            agents: 2,
            queue_capacity: 8,
            arrival_prob: Some(0.9),
            ..GameConfig::default()
        };
        cfg.agent.subslots = 4;
        let mut game: SlotGame = SlotGame::new(cfg);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..200 {
            game.step_frame(&mut rng);
            assert!(game.queues().iter().all(|&q| q <= 8));
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut game = saturated_game(2, 4);
        let mut rng = StdRng::seed_from_u64(17);
        let a = game.step_frame(&mut rng);
        let b = game.step_frame(&mut rng);
        let t = game.totals();
        assert_eq!(t.successes, a.successes + b.successes);
        assert_eq!(game.frames_played(), 2);
    }
}
