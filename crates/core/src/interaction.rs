//! The conceptual multi-agent interaction of one subslot
//! (paper §4.1, Table 4).
//!
//! Table 4 enumerates, for three co-located agents, every combination
//! of actions together with the local rewards each agent observes and
//! the resulting "conceptual global reward". This module implements
//! the underlying channel semantics for *any* number of co-located
//! agents:
//!
//! * QSend transmits from the very start of the subslot;
//! * all QCCA agents assess the channel simultaneously at the subslot
//!   start: the CCA reports **busy** iff some agent chose QSend
//!   (concurrent CCAs cannot see each other — carrier sensing takes a
//!   turnaround time before energy appears);
//! * every QCCA agent whose CCA passed transmits;
//! * a transmission succeeds iff it is the only one in the subslot;
//! * QBackoff agents overhear a DATA/ACK exchange iff exactly one
//!   agent transmitted.
//!
//! These semantics reproduce every row of Table 4 (see the tests) and
//! also drive the abstract [`crate::game`] used for fast
//! convergence experiments.

use crate::action::QmaAction;
use crate::reward::{ActionOutcome, RewardTable};

/// The outcome of one subslot for a set of co-located agents.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotInteraction {
    /// Per-agent outcome, aligned with the input action slice.
    pub outcomes: Vec<ActionOutcome>,
    /// Index of the agent that transmitted successfully, if any.
    pub winner: Option<usize>,
    /// Number of agents that actually put a frame on the air.
    pub transmitters: usize,
}

impl SlotInteraction {
    /// `true` if two or more transmissions collided.
    pub fn collided(&self) -> bool {
        self.transmitters >= 2
    }
}

/// Resolves one subslot among co-located agents that all have a
/// packet to send.
///
/// Agents that do not participate in the subslot (empty queue) should
/// simply not be included — or be included as [`QmaAction::Backoff`],
/// which is equivalent for everyone else.
///
/// # Examples
///
/// ```
/// use qma_core::QmaAction::{Backoff as B, Cca as C, Send as S};
/// use qma_core::interaction::resolve;
///
/// // Row "B S B" of Table 4: the sender wins, observers overhear.
/// let i = resolve(&[B, S, B]);
/// assert_eq!(i.winner, Some(1));
/// ```
pub fn resolve(actions: &[QmaAction]) -> SlotInteraction {
    let any_send = actions.contains(&QmaAction::Send);

    // Who transmits? Every QSend; every QCCA if no QSend occupies the
    // channel from the subslot start.
    let transmitters: Vec<usize> = actions
        .iter()
        .enumerate()
        .filter(|(_, &a)| match a {
            QmaAction::Send => true,
            QmaAction::Cca => !any_send,
            QmaAction::Backoff => false,
        })
        .map(|(i, _)| i)
        .collect();

    let success = transmitters.len() == 1;
    let winner = if success { Some(transmitters[0]) } else { None };

    let outcomes = actions
        .iter()
        .map(|&a| match a {
            QmaAction::Backoff => ActionOutcome::Backoff { overheard: success },
            QmaAction::Send => ActionOutcome::SendTx { acked: success },
            QmaAction::Cca => {
                if any_send {
                    ActionOutcome::CcaBusy
                } else {
                    ActionOutcome::CcaTx { acked: success }
                }
            }
        })
        .collect();

    SlotInteraction {
        outcomes,
        winner,
        transmitters: transmitters.len(),
    }
}

/// Local rewards for each agent in a resolved subslot.
pub fn local_rewards(actions: &[QmaAction], table: &RewardTable) -> Vec<f32> {
    resolve(actions)
        .outcomes
        .iter()
        .map(|&o| table.reward(o))
        .collect()
}

/// The conceptual global reward: the sum of all local rewards
/// (Table 4, right column).
pub fn global_reward(actions: &[QmaAction], table: &RewardTable) -> f32 {
    local_rewards(actions, table).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::QmaAction::{Backoff as B, Cca as C, Send as S};

    fn rewards(actions: &[QmaAction]) -> (Vec<f32>, f32) {
        let t = RewardTable::paper();
        let local = local_rewards(actions, &t);
        let global = global_reward(actions, &t);
        (local, global)
    }

    // ---- Every row of Table 4 ----

    #[test]
    fn table4_successful_transmissions() {
        // B S B → 2 / 4 / 2, global 8.
        assert_eq!(rewards(&[B, S, B]), (vec![2.0, 4.0, 2.0], 8.0));
        // B C B → 2 / 3 / 2, global 7.
        assert_eq!(rewards(&[B, C, B]), (vec![2.0, 3.0, 2.0], 7.0));
        // C S C → 1 / 4 / 1, global 6.
        assert_eq!(rewards(&[C, S, C]), (vec![1.0, 4.0, 1.0], 6.0));
    }

    #[test]
    fn table4_no_transmission() {
        // B B B → 0 / 0 / 0, global 0.
        assert_eq!(rewards(&[B, B, B]), (vec![0.0, 0.0, 0.0], 0.0));
    }

    #[test]
    fn table4_failed_transmissions() {
        // C B C → −2 / 0 / −2, global −4 (both CCAs pass, collide).
        assert_eq!(rewards(&[C, B, C]), (vec![-2.0, 0.0, -2.0], -4.0));
        // S B S → −3 / 0 / −3, global −6 (two sends collide).
        assert_eq!(rewards(&[S, B, S]), (vec![-3.0, 0.0, -3.0], -6.0));
        // C C C → −2 / −2 / −2, global −6.
        assert_eq!(rewards(&[C, C, C]), (vec![-2.0, -2.0, -2.0], -6.0));
        // S C S → −3 / 1 / −3, global −5 (CCA detects the sends).
        assert_eq!(rewards(&[S, C, S]), (vec![-3.0, 1.0, -3.0], -5.0));
        // S S S → −3 / −3 / −3, global −9.
        assert_eq!(rewards(&[S, S, S]), (vec![-3.0, -3.0, -3.0], -9.0));
    }

    // ---- Semantics beyond the table ----

    #[test]
    fn lone_sender_wins() {
        let i = resolve(&[B, S, B]);
        assert_eq!(i.winner, Some(1));
        assert_eq!(i.transmitters, 1);
        assert!(!i.collided());
    }

    #[test]
    fn cca_defers_to_send() {
        // A QCCA agent never transmits into a QSend.
        let i = resolve(&[S, C]);
        assert_eq!(i.outcomes[1], ActionOutcome::CcaBusy);
        assert_eq!(i.winner, Some(0));
    }

    #[test]
    fn concurrent_ccas_collide() {
        let i = resolve(&[C, C]);
        assert!(i.collided());
        assert_eq!(i.winner, None);
        assert_eq!(i.transmitters, 2);
    }

    #[test]
    fn observers_overhear_only_on_success() {
        let ok = resolve(&[B, S]);
        assert_eq!(ok.outcomes[0], ActionOutcome::Backoff { overheard: true });
        let fail = resolve(&[B, S, S]);
        assert_eq!(
            fail.outcomes[0],
            ActionOutcome::Backoff { overheard: false }
        );
        let idle = resolve(&[B, B]);
        assert_eq!(
            idle.outcomes[0],
            ActionOutcome::Backoff { overheard: false }
        );
    }

    #[test]
    fn empty_slot_is_quiet() {
        let i = resolve(&[]);
        assert_eq!(i.transmitters, 0);
        assert_eq!(i.winner, None);
    }

    #[test]
    fn collision_count_scales() {
        // "there is no difference in a collision of 2 or n packets".
        for n in 2..6 {
            let actions = vec![S; n];
            let i = resolve(&actions);
            assert!(i.collided());
            assert!(i
                .outcomes
                .iter()
                .all(|&o| o == ActionOutcome::SendTx { acked: false }));
        }
    }

    #[test]
    fn single_cca_alone_succeeds() {
        let i = resolve(&[C]);
        assert_eq!(i.outcomes[0], ActionOutcome::CcaTx { acked: true });
        assert_eq!(i.winner, Some(0));
    }

    #[test]
    fn global_reward_is_sum_of_locals() {
        let t = RewardTable::paper();
        for combo in [[B, C, S], [S, S, C], [C, B, B]] {
            let local = local_rewards(&combo, &t);
            let g = global_reward(&combo, &t);
            assert_eq!(g, local.iter().sum::<f32>());
        }
    }
}
