//! # qma-core — the QMA multiple-access learning scheme
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Meyer & Turau, *QMA: A Resource-efficient, Q-learning-based
//! Multiple Access Scheme for the IIoT*, ICDCS 2021): a per-node
//! Q-learning agent that learns **which contention subslots are good
//! for transmission** and which are likely to collide, purely from
//! local observations.
//!
//! The crate is deliberately *simulator-independent*: it contains the
//! learning agent exactly as it would run on an embedded device (the
//! paper targets Cortex-M3 nodes without an FPU — see the fixed-point
//! backend in [`value`]). The workspace's `qma-mac` crate adapts it to
//! the radio simulation.
//!
//! ## Structure
//!
//! * [`action`] — the action set {QBackoff, QCCA, QSend} (§4),
//! * [`reward`] — the local reward function of Eq. 6–8 and the action
//!   outcomes that produce rewards,
//! * [`interaction`] — the conceptual global interaction of Table 4:
//!   given every agent's action in a subslot, who succeeds, who
//!   collides, and which local rewards result,
//! * [`value`] — Q-value arithmetic over `f32` or 16-bit fixed point,
//! * [`qtable`] — the Q-table with the paper's update rule (Eq. 5,
//!   including the penalty ξ for stochastic environments) and the
//!   strict-improvement policy table (Eq. 3),
//! * [`explore`] — parameter-based exploration (§4.2, Fig. 4),
//! * [`agent`] — the full QMA agent: per-subslot action selection,
//!   cautious startup (§4.3), deferred reward application,
//! * [`lauer`] — the underlying distributed Q-learning algorithm for
//!   cooperative multi-agent systems (Lauer & Riedmiller) that QMA
//!   extends, reproducing the paper's Tables 1–3,
//! * [`game`] — an abstract "subslot game" that lets the learning
//!   dynamics be exercised and tested without a radio simulator.
//!
//! ## Quick start
//!
//! ```
//! use qma_core::{QmaAgent, QmaConfig, ActionOutcome, QmaAction};
//! use rand::SeedableRng;
//!
//! let mut agent: QmaAgent = QmaAgent::new(QmaConfig::default());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//!
//! // At subslot 0 with one queued packet and idle neighbours:
//! let decision = agent.decide(0, 1, &mut rng);
//! // ... execute the action on the radio; once its outcome is known:
//! match decision.action {
//!     QmaAction::Backoff => agent.complete(ActionOutcome::Backoff { overheard: false }, 1),
//!     QmaAction::Cca => agent.complete(ActionOutcome::CcaTx { acked: true }, 3),
//!     QmaAction::Send => agent.complete(ActionOutcome::SendTx { acked: true }, 3),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod agent;
pub mod explore;
pub mod game;
pub mod interaction;
pub mod lauer;
pub mod qtable;
pub mod reward;
pub mod value;

pub use action::QmaAction;
pub use agent::{Decision, QmaAgent, QmaConfig};
pub use explore::ExplorationTable;
pub use qtable::QTable;
pub use reward::{ActionOutcome, RewardTable};
pub use value::{Fixed16, QValue};
