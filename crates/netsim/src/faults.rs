//! Deterministic fault injection: typed disturbance schedules.
//!
//! A [`FaultPlan`] is a pre-expanded list of [`FaultEvent`]s — crash
//! and reboot of nodes, jammer bursts, link-quality drift, sink
//! outage, clock skew on a cohort — that [`crate::SimBuilder`]
//! schedules as first-class DES events before the simulation starts.
//! The plan is plain data: whoever builds it (a chaos scenario, a
//! test) derives the cohorts and instants from its own seeded RNG, so
//! the same seed always yields the same disturbance trace.
//!
//! # Determinism under sharding
//!
//! Fault events travel through the scheduler's binary heap, never the
//! boundary wheel. The sharded boundary sweep refuses to drain a
//! wheel bucket while an earlier-or-equal `(time, seq)` heap event is
//! pending, so a fault always executes sequentially, at exactly the
//! same point of the event order, at any `--shards K` — the PR 5
//! bit-identity contract extends to faulted runs with no extra
//! machinery.

use qma_des::{SimDuration, SimTime};

/// What a single fault event does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Power-fail a node: radio off, queue contents lost, pending
    /// timers dead, any transmission in flight aborted mid-air. A
    /// crash of the sink models a sink outage. Crashing a node that
    /// is already down (or never started) is a no-op.
    Crash {
        /// The node to take down.
        node: u32,
    },
    /// Bring a crashed node back: the MAC's volatile state is reset
    /// (see [`crate::MacProtocol::on_reboot`]) and the node runs its
    /// start sequence again. Rebooting a node that is up is a no-op.
    Reboot {
        /// The node to bring back.
        node: u32,
        /// Keep the learned policy (Q-table) across the reboot?
        /// `false` wipes it — the node re-learns from scratch, which
        /// is exactly the re-learning cost the chaos scenarios probe.
        persist_learning: bool,
    },
    /// Switch a jammer on over a set of nodes: their CCAs read busy,
    /// they cannot lock onto frames, receptions in progress are
    /// corrupted.
    JamStart {
        /// Nodes inside the jammer's footprint.
        nodes: Vec<u32>,
    },
    /// Switch the jammer off again.
    JamEnd {
        /// Nodes leaving the jammer's footprint.
        nodes: Vec<u32>,
    },
    /// Degrade directed links `(tx, rx)` below the decoding
    /// threshold: energy still arrives (interference, CCA busy) but
    /// frames no longer decode — long-term link-quality drift.
    DegradeLinks {
        /// Directed `(transmitter, receiver)` pairs.
        links: Vec<(u32, u32)>,
    },
    /// Restore previously degraded links.
    RestoreLinks {
        /// Directed `(transmitter, receiver)` pairs.
        links: Vec<(u32, u32)>,
    },
    /// Offset the local clock of a cohort: every MAC timer the
    /// affected nodes arm from now on fires `offset_us` late
    /// (positive) or early (negative). A negative skew can push
    /// events into the past, where the scheduler clamps and counts
    /// them against [`crate::SimBuilder::past_clamp_budget`].
    ClockSkew {
        /// The affected cohort.
        nodes: Vec<u32>,
        /// Signed offset in microseconds (`0` removes the skew).
        offset_us: i64,
    },
}

/// One scheduled fault: `kind` fires at `at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What it does.
    pub kind: FaultKind,
}

/// A pre-expanded, deterministic disturbance schedule.
///
/// Events fire in `(time, insertion order)` order — ties resolve by
/// the order they were pushed, so a plan is reproducible from its
/// construction sequence alone.
///
/// # Examples
///
/// ```
/// use qma_des::{SimDuration, SimTime};
/// use qma_netsim::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .crash_reboot(3, SimTime::from_secs(200), SimDuration::from_secs(30), false)
///     .jam(vec![1, 2], SimTime::from_secs(300), SimDuration::from_secs(10));
/// assert_eq!(plan.len(), 4); // crash + reboot + jam on + jam off
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan. Arming an empty plan on a simulation costs
    /// nothing per event — the bench guard holds it below 1 %.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Appends a raw fault event.
    pub fn push(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Crash `node` at `at` and reboot it `outage` later.
    pub fn crash_reboot(
        self,
        node: u32,
        at: SimTime,
        outage: SimDuration,
        persist_learning: bool,
    ) -> Self {
        self.push(at, FaultKind::Crash { node }).push(
            at + outage,
            FaultKind::Reboot {
                node,
                persist_learning,
            },
        )
    }

    /// Sink outage: crash `sink` at `at`, bring it back `outage`
    /// later with its state persisted (a sink has nothing to
    /// re-learn; what the scenario measures is the traffic lost and
    /// the recovery ramp).
    pub fn sink_outage(self, sink: u32, at: SimTime, outage: SimDuration) -> Self {
        self.crash_reboot(sink, at, outage, true)
    }

    /// Jam `nodes` from `at` for `burst`.
    pub fn jam(self, nodes: Vec<u32>, at: SimTime, burst: SimDuration) -> Self {
        self.push(
            at,
            FaultKind::JamStart {
                nodes: nodes.clone(),
            },
        )
        .push(at + burst, FaultKind::JamEnd { nodes })
    }

    /// Degrade `links` from `at` for `episode`, then restore them.
    pub fn drift(self, links: Vec<(u32, u32)>, at: SimTime, episode: SimDuration) -> Self {
        self.push(
            at,
            FaultKind::DegradeLinks {
                links: links.clone(),
            },
        )
        .push(at + episode, FaultKind::RestoreLinks { links })
    }

    /// Skew the local clocks of `nodes` by `offset_us` from `at` on.
    pub fn clock_skew(self, nodes: Vec<u32>, at: SimTime, offset_us: i64) -> Self {
        self.push(at, FaultKind::ClockSkew { nodes, offset_us })
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the plan empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The latest fault instant in the plan, if any — scenarios use
    /// it to size the post-fault measurement window.
    pub fn last_at(&self) -> Option<SimTime> {
        self.events.iter().map(|e| e.at).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_expand_to_paired_events() {
        let plan = FaultPlan::new()
            .crash_reboot(7, SimTime::from_secs(10), SimDuration::from_secs(5), true)
            .jam(
                vec![1, 2],
                SimTime::from_secs(20),
                SimDuration::from_secs(2),
            )
            .drift(
                vec![(0, 1)],
                SimTime::from_secs(30),
                SimDuration::from_secs(3),
            )
            .clock_skew(vec![4], SimTime::from_secs(40), -250);
        assert_eq!(plan.len(), 7);
        assert_eq!(plan.events()[0].kind, FaultKind::Crash { node: 7 });
        assert_eq!(
            plan.events()[1],
            FaultEvent {
                at: SimTime::from_secs(15),
                kind: FaultKind::Reboot {
                    node: 7,
                    persist_learning: true,
                },
            }
        );
        assert_eq!(plan.events()[3].at, SimTime::from_secs(22));
        assert_eq!(plan.last_at(), Some(SimTime::from_secs(40)));
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::new().last_at(), None);
    }
}
