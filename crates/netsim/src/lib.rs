//! Network-simulation framework for the QMA reproduction.
//!
//! This crate glues the event kernel (`qma-des`) and the radio model
//! (`qma-phy`) into a protocol test harness — the role OMNeT++ plays
//! in the paper's evaluation. Protocol logic lives *outside*: MAC
//! schemes implement [`MacProtocol`] (CSMA/CA and QMA live in
//! `qma-mac`), applications/routing/DSME implement [`UpperLayer`].
//!
//! Key pieces:
//!
//! * [`frame`] — MAC frames, addresses, app-packet provenance, and
//!   the queue-level piggyback QMA's exploration relies on,
//! * [`queue`] — the bounded transmit queue (capacity 8 in the paper)
//!   with drop accounting,
//! * [`clock`] — the synchronized superframe clock: CAP window and
//!   the M=54 contention subslots QMA uses as its learning state,
//! * [`metrics`] — PDR/delay/queue/energy/learning recorders backing
//!   every figure of the evaluation,
//! * [`world`] — nodes + medium + event dispatch with borrow-clean
//!   `Ctx` views and cross-layer notice queues.
//!
//! # Examples
//!
//! A minimal "blast one frame" MAC wired into a 2-node world:
//!
//! ```
//! use qma_netsim::{
//!     Frame, FrameKind, MacCtx, MacProtocol, MacTimerKind, NodeId, SimBuilder,
//! };
//! use qma_phy::Connectivity;
//!
//! struct Blaster;
//! impl MacProtocol for Blaster {
//!     fn start(&mut self, ctx: &mut MacCtx<'_>) {
//!         if ctx.node == NodeId(0) {
//!             let frame = Frame::data(NodeId(0), NodeId(1).into(), 1, 20, false);
//!             ctx.start_tx(frame);
//!         }
//!     }
//!     fn on_timer(&mut self, _: &mut MacCtx<'_>, _: MacTimerKind) {}
//!     fn on_frame(&mut self, ctx: &mut MacCtx<'_>, frame: &Frame) {
//!         if frame.dst.is_for(ctx.node) {
//!             ctx.deliver_to_upper(frame.clone());
//!         }
//!     }
//!     fn on_tx_end(&mut self, _: &mut MacCtx<'_>) {}
//!     fn on_cca_result(&mut self, _: &mut MacCtx<'_>, _: bool) {}
//!     fn on_enqueue(&mut self, _: &mut MacCtx<'_>) {}
//! }
//!
//! let mut sim = SimBuilder::new(Connectivity::full(2), 42)
//!     .mac_factory(|_, _| Box::new(Blaster))
//!     .build();
//! sim.run_for(qma_des::SimDuration::from_secs(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod faults;
pub mod frame;
pub mod metrics;
pub mod queue;
pub mod world;

pub use clock::FrameClock;
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use frame::{Address, AppInfo, Frame, FrameKind, Payload};
pub use metrics::{LearnerSample, MacCounters, MetricsHub, SlotAction, TxResult};
pub use queue::TxQueue;
pub use world::{
    default_scheduler_wheel, default_shard_batch_min, default_shard_pool, default_shards,
    set_default_scheduler_wheel, set_default_shard_batch_min, set_default_shard_pool,
    set_default_shards, ActiveSet, MacCtx, MacProtocol, MacTimerKind, NodeId,
    PastClampBudgetExceeded, Sim, SimBuilder, TickAction, TickPlan, TickView, UpperCtx, UpperLayer,
    SHARD_BATCH_MIN_DEFAULT,
};
