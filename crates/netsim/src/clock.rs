//! The synchronized superframe clock.
//!
//! All nodes share one frame structure (the paper's DSME networks are
//! beacon-synchronized; we assume ideal synchronisation and note the
//! substitution in DESIGN.md). A frame of duration `frame` contains a
//! contention window (`cap_offset`, `cap_len`) divided into `M`
//! equal subslots — QMA's learning states. "For application in DSME,
//! 8 CAP slots are further subdivided into 54 subslots" (§4).
//!
//! Contention MACs (CSMA and QMA alike) may only touch the medium
//! inside the CAP window.

use qma_des::{SimDuration, SimTime};

/// Frame/CAP/subslot geometry shared by all nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameClock {
    frame: SimDuration,
    cap_offset: SimDuration,
    cap_len: SimDuration,
    subslots: u16,
    subslot: SimDuration,
}

/// Where an instant falls inside the frame structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotPosition {
    /// Index of the frame containing the instant.
    pub frame_index: u64,
    /// Subslot index within the CAP, if the instant is inside the
    /// usable CAP area.
    pub subslot: Option<u16>,
}

impl FrameClock {
    /// Creates a clock.
    ///
    /// # Panics
    ///
    /// Panics if durations are inconsistent (CAP outside the frame,
    /// zero subslots, subslots longer than the CAP).
    pub fn new(
        frame: SimDuration,
        cap_offset: SimDuration,
        cap_len: SimDuration,
        subslots: u16,
    ) -> Self {
        assert!(subslots > 0, "need at least one subslot");
        assert!(!frame.is_zero(), "frame must have positive duration");
        assert!(
            cap_offset + cap_len <= frame,
            "CAP window exceeds the frame"
        );
        let subslot = SimDuration::from_micros(cap_len.as_micros() / subslots as u64);
        assert!(
            !subslot.is_zero(),
            "CAP too short for the requested subslot count"
        );
        FrameClock {
            frame,
            cap_offset,
            cap_len,
            subslots,
            subslot,
        }
    }

    /// The paper's DSME configuration: superframe order 3 (122.88 ms
    /// superframe), beacon slot + 8 CAP slots, CAP divided into 54
    /// subslots. The CAP occupies slots 1–8 of the 16-slot
    /// superframe (slot 0 carries the beacon).
    pub fn dsme_so3() -> Self {
        Self::dsme_so3_subslots(54)
    }

    /// The DSME SO3 superframe with a custom subslot count M — the
    /// frame-geometry knob campaign sweeps turn (the paper fixes
    /// M = 54; the subslot count trades state-space size against
    /// subslot duration).
    ///
    /// # Panics
    ///
    /// Panics if `subslots` is zero or exceeds the CAP length in µs.
    pub fn dsme_so3_subslots(subslots: u16) -> Self {
        let slot = SimDuration::from_micros(7_680); // 60·2³ symbols
        FrameClock::new(slot * 16, slot, slot * 8, subslots)
    }

    /// A standalone contention structure: the whole frame is CAP,
    /// divided into `subslots` subslots of `subslot_us` µs each.
    pub fn all_cap(subslots: u16, subslot_us: u64) -> Self {
        let cap = SimDuration::from_micros(subslot_us * subslots as u64);
        FrameClock::new(cap, SimDuration::ZERO, cap, subslots)
    }

    /// Frame duration.
    pub fn frame_duration(&self) -> SimDuration {
        self.frame
    }

    /// Subslot duration.
    pub fn subslot_duration(&self) -> SimDuration {
        self.subslot
    }

    /// Number of subslots per frame (M).
    pub fn subslots(&self) -> u16 {
        self.subslots
    }

    /// The CAP window `(offset, length)` within a frame.
    pub fn cap_window(&self) -> (SimDuration, SimDuration) {
        (self.cap_offset, self.cap_len)
    }

    /// Index of the frame containing `t`.
    pub fn frame_index(&self, t: SimTime) -> u64 {
        t.as_micros() / self.frame.as_micros()
    }

    /// Start of frame `index`.
    pub fn frame_start(&self, index: u64) -> SimTime {
        SimTime::from_micros(index * self.frame.as_micros())
    }

    /// Does `t` fall inside a usable subslot (i.e. within the CAP's
    /// `M × subslot` area)?
    pub fn in_cap(&self, t: SimTime) -> bool {
        self.position(t).subslot.is_some()
    }

    /// Locates `t` in the frame structure.
    pub fn position(&self, t: SimTime) -> SlotPosition {
        let frame_index = self.frame_index(t);
        let in_frame = t.as_micros() - frame_index * self.frame.as_micros();
        let cap_start = self.cap_offset.as_micros();
        let usable = self.subslot.as_micros() * self.subslots as u64;
        let subslot = if in_frame >= cap_start && in_frame < cap_start + usable {
            Some(((in_frame - cap_start) / self.subslot.as_micros()) as u16)
        } else {
            None
        };
        SlotPosition {
            frame_index,
            subslot,
        }
    }

    /// Start time of `subslot` in frame `frame_index`.
    ///
    /// # Panics
    ///
    /// Panics if the subslot is out of range.
    pub fn subslot_start(&self, frame_index: u64, subslot: u16) -> SimTime {
        assert!(subslot < self.subslots, "subslot out of range");
        self.frame_start(frame_index) + self.cap_offset + self.subslot * subslot as u64
    }

    /// The first subslot boundary strictly after `t`, as
    /// `(time, frame_index, subslot)`. This is where a contention MAC
    /// wakes up next.
    pub fn next_subslot_start(&self, t: SimTime) -> (SimTime, u64, u16) {
        let pos = self.position(t);
        // Candidate: next subslot in this frame.
        match pos.subslot {
            Some(m) if m + 1 < self.subslots => {
                let start = self.subslot_start(pos.frame_index, m + 1);
                (start, pos.frame_index, m + 1)
            }
            Some(_) => {
                let start = self.subslot_start(pos.frame_index + 1, 0);
                (start, pos.frame_index + 1, 0)
            }
            None => {
                // Before this frame's CAP, or after it?
                let cap0 = self.subslot_start(pos.frame_index, 0);
                if t < cap0 {
                    (cap0, pos.frame_index, 0)
                } else {
                    let start = self.subslot_start(pos.frame_index + 1, 0);
                    (start, pos.frame_index + 1, 0)
                }
            }
        }
    }

    /// The subslot boundary following subslot `m` of frame
    /// `frame_index`, as `(time, frame_index, subslot)`.
    ///
    /// Equivalent to [`FrameClock::next_subslot_start`] evaluated
    /// exactly at that subslot's start, but computed from the indices
    /// with multiplications only — no divisions — so a MAC that ticks
    /// every subslot can advance its position incrementally.
    pub fn subslot_after(&self, frame_index: u64, m: u16) -> (SimTime, u64, u16) {
        if m + 1 < self.subslots {
            (self.subslot_start(frame_index, m + 1), frame_index, m + 1)
        } else {
            (self.subslot_start(frame_index + 1, 0), frame_index + 1, 0)
        }
    }

    /// End of the usable CAP area in the frame containing `t`:
    /// transactions must finish before this instant.
    pub fn cap_end(&self, t: SimTime) -> SimTime {
        self.cap_end_of_frame(self.frame_index(t))
    }

    /// End of the usable CAP area of frame `frame_index` — the
    /// division-free variant of [`FrameClock::cap_end`] for callers
    /// that already know the frame index (the subslot-tick hot path).
    pub fn cap_end_of_frame(&self, frame_index: u64) -> SimTime {
        self.frame_start(frame_index) + self.cap_offset + self.subslot * self.subslots as u64
    }

    /// The global boundary index of subslot `m` in frame
    /// `frame_index`: `frame × M + m`. Strictly monotone in the
    /// subslot start time, which is exactly the contract
    /// `qma_des::Scheduler::schedule_boundary` needs for its O(1)
    /// calendar buckets.
    pub fn boundary_index(&self, frame_index: u64, subslot: u16) -> u64 {
        frame_index * self.subslots as u64 + subslot as u64
    }

    /// How many subslots the interval `[from, to]` spans, i.e. the
    /// `i` in the paper's `Q(mₜ₊ᵢ)` when an action started at `from`
    /// completes at `to`. Counted in *global* subslot positions so a
    /// transaction crossing the CFP gap still lands on the right next
    /// state.
    pub fn global_subslot(&self, t: SimTime) -> u64 {
        let pos = self.position(t);
        let m = pos.subslot.unwrap_or_else(|| {
            // Clamp instants in the gap to the last subslot of the
            // frame (outcomes arriving after CAP end belong to the
            // final subslot's action).
            let cap0 = self.subslot_start(pos.frame_index, 0);
            if t < cap0 {
                0
            } else {
                self.subslots - 1
            }
        });
        pos.frame_index * self.subslots as u64 + m as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsme_so3_geometry() {
        let c = FrameClock::dsme_so3();
        assert_eq!(c.frame_duration(), SimDuration::from_micros(122_880));
        assert_eq!(c.cap_window().0, SimDuration::from_micros(7_680));
        assert_eq!(c.cap_window().1, SimDuration::from_micros(61_440));
        assert_eq!(c.subslots(), 54);
        // 61.44 ms / 54 = 1137.77… → 1137 µs integer subslots.
        assert_eq!(c.subslot_duration(), SimDuration::from_micros(1_137));
    }

    #[test]
    fn position_maps_beacon_cap_cfp() {
        let c = FrameClock::dsme_so3();
        // Beacon slot: before the CAP.
        assert_eq!(c.position(SimTime::from_micros(100)).subslot, None);
        // First CAP subslot.
        let p = c.position(SimTime::from_micros(7_680));
        assert_eq!(p.subslot, Some(0));
        assert_eq!(p.frame_index, 0);
        // Last usable subslot starts at 7680 + 53·1137 = 67 941.
        assert_eq!(c.position(SimTime::from_micros(67_941)).subslot, Some(53));
        // CFP: after CAP end (7680 + 54·1137 = 69 078).
        assert_eq!(c.position(SimTime::from_micros(69_078)).subslot, None);
        assert!(!c.in_cap(SimTime::from_micros(100_000)));
        // Next frame wraps.
        let p = c.position(SimTime::from_micros(122_880 + 7_680));
        assert_eq!(p.frame_index, 1);
        assert_eq!(p.subslot, Some(0));
    }

    #[test]
    fn next_subslot_progression() {
        let c = FrameClock::dsme_so3();
        // From the beacon slot → subslot 0 of the same frame.
        let (t, f, m) = c.next_subslot_start(SimTime::from_micros(10));
        assert_eq!((t.as_micros(), f, m), (7_680, 0, 0));
        // From inside subslot 0 → subslot 1.
        let (t, _, m) = c.next_subslot_start(SimTime::from_micros(7_700));
        assert_eq!((t.as_micros(), m), (7_680 + 1_137, 1));
        // From the last subslot → subslot 0 of the next frame.
        let (t, f, m) = c.next_subslot_start(SimTime::from_micros(67_941));
        assert_eq!((t.as_micros(), f, m), (122_880 + 7_680, 1, 0));
        // From the CFP → subslot 0 of the next frame.
        let (t, f, m) = c.next_subslot_start(SimTime::from_micros(80_000));
        assert_eq!((t.as_micros(), f, m), (122_880 + 7_680, 1, 0));
    }

    #[test]
    fn all_cap_has_no_gap() {
        let c = FrameClock::all_cap(4, 1_000);
        assert_eq!(c.frame_duration(), SimDuration::from_millis(4));
        for us in (0..8_000).step_by(250) {
            assert!(c.in_cap(SimTime::from_micros(us)), "gap at {us}");
        }
        let (t, f, m) = c.next_subslot_start(SimTime::from_micros(3_999));
        assert_eq!((t.as_micros(), f, m), (4_000, 1, 0));
    }

    #[test]
    fn global_subslot_is_monotone_and_dense_in_cap() {
        let c = FrameClock::dsme_so3();
        let mut last = 0;
        for us in (0..400_000).step_by(137) {
            let g = c.global_subslot(SimTime::from_micros(us));
            assert!(g >= last, "not monotone at {us}");
            last = g;
        }
        // Subslot 53 of frame 0 and subslot 0 of frame 1 are adjacent.
        assert_eq!(c.global_subslot(SimTime::from_micros(67_941)), 53);
        assert_eq!(c.global_subslot(SimTime::from_micros(122_880 + 7_680)), 54);
        // CFP clamps to the frame's last subslot.
        assert_eq!(c.global_subslot(SimTime::from_micros(90_000)), 53);
    }

    #[test]
    fn subslot_after_matches_next_subslot_start() {
        for c in [FrameClock::dsme_so3(), FrameClock::all_cap(4, 1_000)] {
            for f in 0..3u64 {
                for m in 0..c.subslots() {
                    let t = c.subslot_start(f, m);
                    assert_eq!(
                        c.subslot_after(f, m),
                        c.next_subslot_start(t),
                        "divergence at frame {f} subslot {m}"
                    );
                }
            }
        }
    }

    #[test]
    fn cap_end_boundary() {
        let c = FrameClock::dsme_so3();
        assert_eq!(c.cap_end(SimTime::from_micros(10_000)).as_micros(), 69_078);
        assert_eq!(
            c.cap_end(SimTime::from_micros(130_000)).as_micros(),
            122_880 + 69_078
        );
    }

    #[test]
    fn subslot_start_roundtrip() {
        let c = FrameClock::dsme_so3();
        for f in [0u64, 1, 7] {
            for m in [0u16, 1, 26, 53] {
                let t = c.subslot_start(f, m);
                let p = c.position(t);
                assert_eq!(p.frame_index, f);
                assert_eq!(p.subslot, Some(m));
            }
        }
    }

    #[test]
    #[should_panic(expected = "CAP window exceeds")]
    fn oversized_cap_panics() {
        let _ = FrameClock::new(
            SimDuration::from_millis(10),
            SimDuration::from_millis(5),
            SimDuration::from_millis(6),
            4,
        );
    }
}
