//! The simulated world: nodes, medium, event dispatch and the
//! MAC / upper-layer protocol traits.
//!
//! Protocol objects (implementations of [`MacProtocol`] and
//! [`UpperLayer`]) live in vectors *parallel* to the world state, so
//! a dispatched handler can freely mutate the world through its
//! [`MacCtx`]/[`UpperCtx`] view without aliasing itself. Cross-layer
//! calls (MAC → upper delivery, upper → MAC enqueue) are queued as
//! notices and drained after the handler returns.

use std::collections::BTreeMap;

use rand::rngs::StdRng;

use qma_des::{Handler, Scheduler, SeedSequence, SimDuration, SimTime};
use qma_phy::{
    Connectivity, EnergyMeter, EnergyReport, Medium, PhyNodeId, PhyTiming, PowerProfile, TxToken,
};

use crate::clock::FrameClock;
use crate::frame::Frame;
use crate::metrics::{LearnerSample, MetricsHub, SlotAction, TxResult};
use crate::queue::TxQueue;

/// Identifier of a simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    fn phy(self) -> PhyNodeId {
        PhyNodeId(self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// How long a piggybacked neighbour queue level stays valid (see
/// [`MacCtx::queue_diff`]).
pub const NEIGHBOR_LEVEL_TTL: SimDuration = SimDuration::from_millis(1_500);

/// MAC timer classes. Each class has one outstanding instance per
/// node; re-arming cancels the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacTimerKind {
    /// Next contention subslot boundary.
    Subslot,
    /// CSMA/CA backoff expiry.
    Backoff,
    /// ACK wait timeout.
    AckTimeout,
    /// CAP start/end housekeeping.
    Cap,
    /// Protocol-defined auxiliary timer (e.g. delayed ACK turnaround).
    Aux1,
    /// Second auxiliary timer.
    Aux2,
}

impl MacTimerKind {
    const COUNT: usize = 6;

    fn index(self) -> usize {
        match self {
            MacTimerKind::Subslot => 0,
            MacTimerKind::Backoff => 1,
            MacTimerKind::AckTimeout => 2,
            MacTimerKind::Cap => 3,
            MacTimerKind::Aux1 => 4,
            MacTimerKind::Aux2 => 5,
        }
    }
}

/// Who initiated an in-flight transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxOrigin {
    Mac,
    Upper,
}

/// Simulation events.
#[derive(Debug, Clone)]
enum Event {
    Start,
    EnableNode {
        node: NodeId,
    },
    MacTimer {
        node: NodeId,
        kind: MacTimerKind,
        gen: u64,
    },
    UpperTimer {
        node: NodeId,
        tag: u64,
        gen: u64,
    },
    TxEnd {
        node: NodeId,
        gen: u64,
    },
    CcaEnd {
        node: NodeId,
        gen: u64,
    },
    FrameBoundary,
    /// A scheduled fault from the armed [`crate::FaultPlan`] (index
    /// into its event list). Always heap-scheduled, so the sharded
    /// boundary sweep serialises around it — see [`crate::faults`].
    Fault {
        idx: u32,
    },
}

#[derive(Debug)]
struct CcaState {
    saw_energy: bool,
    gen: u64,
}

/// A dense bitmap over node indices — the world's active-set
/// representation (enabled radios, armed subslot ticks). One cache
/// line covers 512 nodes, so sweeping the set is cache-linear even at
/// 50 000 nodes.
#[derive(Debug, Clone, Default)]
pub struct ActiveSet {
    words: Vec<u64>,
    count: usize,
}

impl ActiveSet {
    /// An all-clear set over `n` indices.
    pub fn new(n: usize) -> Self {
        ActiveSet {
            words: vec![0; n.div_ceil(64)],
            count: 0,
        }
    }

    /// Is bit `i` set?
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Sets or clears bit `i`, keeping the popcount exact.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let was = *word & mask != 0;
        if value && !was {
            *word |= mask;
            self.count += 1;
        } else if !value && was {
            *word &= !mask;
            self.count -= 1;
        }
    }

    /// Number of set bits, exact in O(1).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Iterates the set indices in ascending order — word-at-a-time,
    /// so a sparse set over a huge population costs O(words + set
    /// bits), not O(n).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let mut rest = bits;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(w * 64 + b)
            })
        })
    }
}

/// Piggybacked neighbour queue levels in CSR form: for each node, one
/// slot per *in-neighbour* (node it can hear), sorted ascending by
/// neighbour id. Replaces the former dense n×n table — O(E) instead
/// of O(n²), which is what makes 10k+-node worlds possible — while
/// iterating rows in exactly the same ascending-id order, so the
/// [`MacCtx::queue_diff`] fold is bit-identical to the dense version
/// (entries for non-neighbours could never be written anyway).
#[derive(Debug, Clone)]
struct NeighborLevels {
    /// Row `r` spans `ids[offsets[r]..offsets[r+1]]`.
    offsets: Vec<u32>,
    /// In-neighbour ids, ascending within each row.
    ids: Vec<u32>,
    /// Last piggybacked `(queue level, heard at)` per in-neighbour;
    /// parallel to `ids`. `None` until the first audible frame.
    levels: Vec<Option<(u8, SimTime)>>,
}

impl NeighborLevels {
    /// Builds the table by inverting the connectivity's listener rows
    /// (`r` is an in-neighbour row entry of every `t` with `r ∈
    /// listeners(t)`).
    fn new(conn: &Connectivity) -> Self {
        let n = conn.len();
        let mut degree = vec![0u32; n];
        for t in 0..n {
            for &r in conn.listeners(PhyNodeId(t as u32)) {
                degree[r.index()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut ids = vec![0u32; acc as usize];
        let mut fill = offsets.clone();
        // Iterating transmitters in ascending order fills each row in
        // ascending id order.
        for t in 0..n {
            for &r in conn.listeners(PhyNodeId(t as u32)) {
                let pos = &mut fill[r.index()];
                ids[*pos as usize] = t as u32;
                *pos += 1;
            }
        }
        NeighborLevels {
            offsets,
            ids,
            levels: vec![None; acc as usize],
        }
    }

    #[inline]
    fn row(&self, r: usize) -> std::ops::Range<usize> {
        self.offsets[r] as usize..self.offsets[r + 1] as usize
    }

    /// Records that `rx` heard `src` advertise `level` at `t`.
    #[inline]
    fn set(&mut self, rx: usize, src: u32, level: u8, t: SimTime) {
        let range = self.row(rx);
        if let Ok(pos) = self.ids[range.clone()].binary_search(&src) {
            self.levels[range.start + pos] = Some((level, t));
        }
    }

    /// The last level `rx` heard from `src`, if any.
    #[inline]
    fn get(&self, rx: usize, src: u32) -> Option<(u8, SimTime)> {
        let range = self.row(rx);
        match self.ids[range.clone()].binary_search(&src) {
            Ok(pos) => self.levels[range.start + pos],
            Err(_) => None,
        }
    }

    /// The fresh-level fold input: `rx`'s per-in-neighbour entries in
    /// ascending id order.
    #[inline]
    fn entries(&self, rx: usize) -> &[Option<(u8, SimTime)>] {
        &self.levels[self.row(rx)]
    }
}

/// Per-node world state in struct-of-arrays form: each field lives in
/// its own dense `Vec` indexed by [`NodeId`], so a per-subslot sweep
/// over many nodes touches only the arrays it needs (queue depths,
/// timer generations) instead of dragging every node's full record
/// through the cache. The RNGs and energy meters — cold per event —
/// stay out of the hot arrays entirely.
#[derive(Debug)]
struct Nodes {
    queue: Vec<TxQueue>,
    energy: Vec<EnergyMeter>,
    in_flight: Vec<Option<(TxToken, Frame, TxOrigin)>>,
    cca: Vec<Option<CcaState>>,
    cca_gen: Vec<u64>,
    mac_timer_gen: Vec<[u64; MacTimerKind::COUNT]>,
    /// Generation of the current in-flight transmission; a crash
    /// bumps it so the stale `TxEnd` of an aborted frame is ignored.
    tx_gen: Vec<u64>,
    /// Generation of upper-layer timers; a crash bumps it so timers
    /// armed before the outage cannot fire after the reboot (the
    /// rebooted upper re-seeds its own schedule in `start`).
    upper_gen: Vec<u64>,
    /// Signed local-clock offset per node (µs), set by a
    /// [`crate::FaultKind::ClockSkew`] fault. Zero when healthy.
    skew_us: Vec<i64>,
    /// Fast path: no node has ever been skewed (skips the per-arm
    /// offset lookup entirely).
    skew_any: bool,
    mac_rng: Vec<StdRng>,
    upper_rng: Vec<StdRng>,
    /// Nodes whose radio is active (started and not disabled).
    enabled: ActiveSet,
    /// Nodes with an armed subslot tick — the generalisation of the
    /// PR 2 idle-parking flag: a parked node occupies no scheduler
    /// entry and no bit here.
    tick_armed: ActiveSet,
}

impl Nodes {
    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// The `queue_diff` fold shared by [`MacCtx::queue_diff`] (sequential
/// path) and [`TickView::queue_diff`] (sharded decide path): one
/// implementation, so the two engines cannot diverge. See
/// [`MacCtx::queue_diff`] for the semantics.
fn queue_diff_value(now: SimTime, i: usize, queue: &TxQueue, levels: &NeighborLevels) -> i32 {
    let local = queue.len() as f64;

    // Prefer the communication partner's level: the node the
    // head-of-line frame is addressed to is the one whose service
    // we compete with ("it is beneficial to give the
    // communication partner time", §1). In the paper's
    // single-sink scenarios this is exactly the neighbour set of
    // §4.2; in multi-hop trees it directs exploration pressure
    // down the forwarding chain instead of averaging it away
    // across saturated siblings.
    if let Some(head) = queue.head() {
        if let crate::frame::Address::Node(dst) = head.frame.dst {
            if let Some((level, at)) = levels.get(i, dst.0) {
                if now.since(at) <= NEIGHBOR_LEVEL_TTL {
                    return (local - level as f64).round() as i32;
                }
            }
            // Partner unknown or stale: treat as empty (the sink
            // before its first frame, or a silent neighbour).
            return local.round() as i32;
        }
    }

    // Broadcast head or empty queue: fall back to the average
    // over fresh neighbour reports — a single allocation-free
    // pass over this node's CSR level row (same ascending-id
    // order as the dense table it replaced).
    let (sum, count) =
        levels
            .entries(i)
            .iter()
            .flatten()
            .fold((0.0f64, 0u32), |(sum, count), &(level, at)| {
                if now.since(at) <= NEIGHBOR_LEVEL_TTL {
                    (sum + level as f64, count + 1)
                } else {
                    (sum, count)
                }
            });
    let avg = if count == 0 { 0.0 } else { sum / count as f64 };
    (local - avg).round() as i32
}

enum Notice {
    DeliverUp(NodeId, Frame),
    TxResultUp(NodeId, Frame, TxResult),
    MacEnqueued(NodeId),
    UpperPhyTxEnd(NodeId, Frame, Vec<NodeId>),
}

/// Mutable world state shared by all protocol handlers.
pub struct World {
    medium: Medium,
    clock: FrameClock,
    phy: PhyTiming,
    nodes: Nodes,
    neighbor_levels: NeighborLevels,
    /// Metrics collection (public: scenarios read it directly).
    pub metrics: MetricsHub,
    notices: std::collections::VecDeque<Notice>,
}

impl World {
    /// The shared frame clock.
    pub fn clock(&self) -> &FrameClock {
        &self.clock
    }

    /// The PHY timing table.
    pub fn phy(&self) -> &PhyTiming {
        &self.phy
    }

    /// Immutable medium access (tests, assertions).
    pub fn medium(&self) -> &Medium {
        &self.medium
    }

    /// Is a node active (started and radio on)?
    pub fn is_enabled(&self, node: NodeId) -> bool {
        self.nodes.enabled.get(node.index())
    }

    /// Number of nodes whose subslot tick is currently armed (the
    /// complement of the parked set).
    pub fn armed_ticks(&self) -> usize {
        self.nodes.tick_armed.count()
    }

    /// A node's transmit queue.
    pub fn queue(&self, node: NodeId) -> &TxQueue {
        &self.nodes.queue[node.index()]
    }

    /// The last queue level `rx` heard `src` piggyback, if any
    /// (tests, assertions).
    pub fn neighbor_level(&self, rx: NodeId, src: NodeId) -> Option<(u8, SimTime)> {
        self.neighbor_levels.get(rx.index(), src.0)
    }

    /// Closes a node's energy accounting and returns the report.
    pub fn energy_report(&mut self, node: NodeId, now: SimTime) -> EnergyReport {
        self.nodes.energy[node.index()].finish(now.as_micros())
    }

    fn start_tx_internal(
        &mut self,
        node: NodeId,
        mut frame: Frame,
        channel: u8,
        origin: TxOrigin,
        sched: &mut Scheduler<Event>,
    ) {
        let now = sched.now();
        let i = node.index();
        assert!(
            self.nodes.in_flight[i].is_none(),
            "{node} started a tx while one is in flight"
        );
        frame.src = node;
        frame.queue_level = self.nodes.queue[i].level_u8();

        let airtime = SimDuration::from_micros(self.phy.frame_airtime_us(frame.psdu_octets as u64));
        let token = self.medium.start_tx_on(node.phy(), channel);

        // Nodes mid-CCA on this channel observe the new energy. The
        // listener set is a precomputed CSR slice — no allocation.
        for &r in self.medium.connectivity().listeners(node.phy()) {
            if self.medium.listen_channel(r) == channel {
                if let Some(cca) = &mut self.nodes.cca[r.index()] {
                    cca.saw_energy = true;
                }
            }
        }

        let energy = &mut self.nodes.energy[i];
        energy.count_tx_attempt();
        energy.set_activity(now.as_micros(), qma_phy::RadioActivity::Transmit);
        self.nodes.in_flight[i] = Some((token, frame, origin));
        self.nodes.tx_gen[i] += 1;
        let gen = self.nodes.tx_gen[i];
        self.metrics.mac_mut(node).tx_attempts += 1;
        sched.schedule_at(now + airtime, Event::TxEnd { node, gen });
    }

    /// Applies a node's fault-injected clock offset to an instant —
    /// the node's *local* view of `at`. Negative offsets can reach
    /// into the past; the scheduler clamps and counts those (see
    /// [`SimBuilder::past_clamp_budget`]). Cold: only ever called
    /// once a `ClockSkew` fault has fired.
    #[cold]
    fn skewed_time(&self, i: usize, at: SimTime) -> SimTime {
        let s = self.nodes.skew_us[i];
        if s >= 0 {
            at + SimDuration::from_micros(s as u64)
        } else {
            SimTime::from_micros(at.as_micros().saturating_sub(s.unsigned_abs()))
        }
    }

    /// Arms `node`'s subslot tick for the boundary `(frame_index,
    /// subslot)` at `at` — the shared backend of
    /// [`MacCtx::set_subslot_timer_at`] and the tick-plan commit.
    fn arm_subslot_tick(
        &mut self,
        node: NodeId,
        at: SimTime,
        frame_index: u64,
        subslot: u16,
        sched: &mut Scheduler<Event>,
    ) {
        let i = node.index();
        let gen_slot = &mut self.nodes.mac_timer_gen[i][MacTimerKind::Subslot.index()];
        *gen_slot += 1;
        let gen = *gen_slot;
        self.nodes.tick_armed.set(i, true);
        let event = Event::MacTimer {
            node,
            kind: MacTimerKind::Subslot,
            gen,
        };
        if self.nodes.skew_any && self.nodes.skew_us[i] != 0 {
            // A skewed node's tick leaves the boundary grid, so it
            // goes straight to the heap — bucket times in the wheel
            // stay canonical, and heap events serialise the sharded
            // sweep around them (exact order at any shard count).
            sched.schedule_at(self.skewed_time(i, at), event);
            return;
        }
        let index = self.clock.boundary_index(frame_index, subslot);
        sched.schedule_boundary(at, index, event);
    }

    /// Starts a CCA for `node` — the shared backend of
    /// [`MacCtx::start_cca`] and the tick-plan commit. The initial
    /// energy snapshot reads the medium at commit time, so committing
    /// a boundary bucket in bucket order observes exactly the
    /// transmissions earlier bucket positions already started — the
    /// single-core semantics.
    fn start_cca_internal(&mut self, node: NodeId, sched: &mut Scheduler<Event>) {
        let now = sched.now();
        let i = node.index();
        self.nodes.cca_gen[i] += 1;
        let gen = self.nodes.cca_gen[i];
        self.nodes.cca[i] = Some(CcaState {
            saw_energy: self.medium.is_busy(node.phy()),
            gen,
        });
        self.nodes.energy[i].count_cca();
        self.metrics.mac_mut(node).ccas += 1;
        let dur = SimDuration::from_micros(self.phy.cca_us());
        sched.schedule_at(now + dur, Event::CcaEnd { node, gen });
    }

    /// Commits a [`TickPlan`]: re-arm (or park) the subslot tick, then
    /// execute the decided action. The order — rearm before action —
    /// matches the sequential MAC tick, so the scheduler's sequence
    /// numbers (and with them every future tie-break) come out
    /// identical in both engines.
    fn commit_tick_plan(&mut self, node: NodeId, plan: TickPlan, sched: &mut Scheduler<Event>) {
        match plan.rearm {
            Some((at, frame_index, subslot)) => {
                self.arm_subslot_tick(node, at, frame_index, subslot, sched);
            }
            None => self.nodes.tick_armed.set(node.index(), false),
        }
        match plan.action {
            None => {}
            Some(TickAction::Backoff { subslot }) => {
                self.metrics.slot_action(node, subslot, SlotAction::Backoff);
            }
            Some(TickAction::Cca { subslot }) => {
                self.metrics.slot_action(node, subslot, SlotAction::Cca);
                self.start_cca_internal(node, sched);
            }
            Some(TickAction::Send { subslot, frame }) => {
                self.metrics.slot_action(node, subslot, SlotAction::Tx);
                self.start_tx_internal(node, frame, 0, TxOrigin::Mac, sched);
            }
        }
    }
}

/// What a slot-synchronous MAC decided at one subslot boundary — the
/// output of [`MacProtocol::subslot_decide`], applied to the world by
/// [`MacCtx::apply_tick_plan`] (or, in the sharded sweep, by the
/// barrier fold). Splitting the tick into a node-local *decision* and
/// a world *commit* is what lets one replication fan its boundary
/// sweep out across cores while committing in the exact single-core
/// order.
#[derive(Debug, Clone)]
pub struct TickPlan {
    /// Re-arm the subslot timer for this boundary `(time, frame
    /// index, subslot)`, or park the tick (`None`).
    pub rearm: Option<(SimTime, u64, u16)>,
    /// The contention action for this subslot, if any.
    pub action: Option<TickAction>,
}

/// The world-side half of a subslot decision.
#[derive(Debug, Clone)]
pub enum TickAction {
    /// Stay in receive mode (recorded for the utilization maps).
    Backoff {
        /// Subslot index the action belongs to.
        subslot: u16,
    },
    /// Start a CCA at the subslot start.
    Cca {
        /// Subslot index the action belongs to.
        subslot: u16,
    },
    /// Transmit `frame` from the subslot start.
    Send {
        /// Subslot index the action belongs to.
        subslot: u16,
        /// The frame to put on the air.
        frame: Frame,
    },
}

/// The node-local read/write surface a subslot decision may touch:
/// the node's own queue (read), RNG (mutate), neighbour-level row
/// (read), the shared clock/PHY tables, and this node's own radio
/// flag. Deliberately **no** scheduler, no medium mutation, no other
/// node's state — that contract is what makes decisions of different
/// nodes at one boundary independent, hence safe to compute on
/// different shards while producing bit-identical results.
pub struct TickView<'a> {
    now: SimTime,
    node: NodeId,
    clock: &'a FrameClock,
    phy: &'a PhyTiming,
    queue: &'a TxQueue,
    levels: &'a NeighborLevels,
    rng: &'a mut StdRng,
    transmitting: bool,
}

impl<'a> TickView<'a> {
    /// Current simulated time (the boundary instant).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this view is scoped to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The shared frame clock.
    pub fn clock(&self) -> &FrameClock {
        self.clock
    }

    /// The PHY timing table.
    pub fn phy(&self) -> &PhyTiming {
        self.phy
    }

    /// The node's transmit queue (read only).
    pub fn queue(&self) -> &TxQueue {
        self.queue
    }

    /// The node's deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Is this node currently transmitting? (Own-radio state only —
    /// mutated exclusively by this node's own events, so the snapshot
    /// cannot race with other shards.)
    pub fn transmitting(&self) -> bool {
        self.transmitting
    }

    /// `local queue level − reported neighbour level` — identical to
    /// [`MacCtx::queue_diff`] (both delegate to the same fold).
    pub fn queue_diff(&self) -> i32 {
        queue_diff_value(self.now, self.node.index(), self.queue, self.levels)
    }
}

/// The MAC protocol interface.
///
/// One object per node; `Send` so a sharded sweep may move a shard's
/// MACs to a worker thread (all state is per-node plain data — no MAC
/// shares anything mutable). All methods receive a [`MacCtx`] scoped
/// to that node.
pub trait MacProtocol: Send {
    /// Called once when the node becomes active.
    fn start(&mut self, ctx: &mut MacCtx<'_>);
    /// A [`MacTimerKind`] timer armed by this MAC fired.
    fn on_timer(&mut self, ctx: &mut MacCtx<'_>, kind: MacTimerKind);
    /// A frame was received cleanly (any addressee — MACs overhear).
    fn on_frame(&mut self, ctx: &mut MacCtx<'_>, frame: &Frame);
    /// This node's own transmission finished its airtime.
    fn on_tx_end(&mut self, ctx: &mut MacCtx<'_>);
    /// A CCA started via [`MacCtx::start_cca`] completed.
    fn on_cca_result(&mut self, ctx: &mut MacCtx<'_>, busy: bool);
    /// The upper layer enqueued a frame into the transmit queue.
    fn on_enqueue(&mut self, ctx: &mut MacCtx<'_>);
    /// The node lost power and is coming back: reset all volatile
    /// MAC state (phase machine, pending-frame bookkeeping) before
    /// [`MacProtocol::start`] runs again. `persist_learning` keeps
    /// the learned policy (Q-table survives in flash); `false` wipes
    /// it, so the node pays the full re-learning cost. The default
    /// is a no-op — correct for memoryless MACs like CSMA whose
    /// `start` already re-initialises everything.
    fn on_reboot(&mut self, persist_learning: bool) {
        let _ = persist_learning;
    }
    /// Per-frame learning metrics (learning MACs only).
    fn learner_sample(&self) -> Option<LearnerSample> {
        None
    }
    /// The current per-subslot policy (learning MACs only), encoded
    /// as the dominant [`SlotAction`] the policy would execute.
    fn policy_snapshot(&self) -> Option<Vec<SlotAction>> {
        None
    }
    /// Does this MAC implement the decide/commit subslot-tick split
    /// ([`MacProtocol::subslot_decide`])? The sharded sweep only
    /// engages when **every** node's MAC does; mixed or legacy
    /// populations fall back to sequential [`MacProtocol::on_timer`]
    /// delivery.
    fn supports_split_tick(&self) -> bool {
        false
    }
    /// The node-local half of a subslot tick: consume the boundary,
    /// mutate only `self` and the view, and return the world commit
    /// as a [`TickPlan`]. Must be behaviourally identical to the
    /// [`MacTimerKind::Subslot`] arm of [`MacProtocol::on_timer`]
    /// followed by [`MacCtx::apply_tick_plan`] — QMA implements
    /// `on_timer` *in terms of* this method, so the two cannot drift.
    /// Returns `None` when unsupported (the default).
    fn subslot_decide(&mut self, view: &mut TickView<'_>) -> Option<TickPlan> {
        let _ = view;
        None
    }
}

/// The upper layer (application, routing, DSME management).
pub trait UpperLayer {
    /// Called once when the node becomes active.
    fn start(&mut self, ctx: &mut UpperCtx<'_>);
    /// A timer armed via [`UpperCtx::schedule`] fired.
    fn on_timer(&mut self, ctx: &mut UpperCtx<'_>, tag: u64);
    /// The MAC delivered a frame addressed to this node.
    fn on_deliver(&mut self, ctx: &mut UpperCtx<'_>, frame: &Frame);
    /// The MAC finished a transmission chain for a queued frame.
    fn on_tx_result(&mut self, ctx: &mut UpperCtx<'_>, frame: &Frame, result: TxResult);
    /// A direct PHY transmission (CFP/GTS data) finished; `delivered`
    /// lists clean receivers.
    fn on_phy_tx_end(&mut self, ctx: &mut UpperCtx<'_>, frame: &Frame, delivered: &[NodeId]) {
        let _ = (ctx, frame, delivered);
    }
}

/// A no-op upper layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullUpper;

impl UpperLayer for NullUpper {
    fn start(&mut self, _: &mut UpperCtx<'_>) {}
    fn on_timer(&mut self, _: &mut UpperCtx<'_>, _: u64) {}
    fn on_deliver(&mut self, _: &mut UpperCtx<'_>, _: &Frame) {}
    fn on_tx_result(&mut self, _: &mut UpperCtx<'_>, _: &Frame, _: TxResult) {}
}

/// Context handed to [`MacProtocol`] methods.
pub struct MacCtx<'a> {
    world: &'a mut World,
    sched: &'a mut Scheduler<Event>,
    /// The node this context is scoped to.
    pub node: NodeId,
}

impl<'a> MacCtx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// The shared frame clock.
    pub fn clock(&self) -> &FrameClock {
        self.world.clock()
    }

    /// The PHY timing table.
    pub fn phy(&self) -> &PhyTiming {
        self.world.phy()
    }

    /// This node's deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.world.nodes.mac_rng[self.node.index()]
    }

    /// The transmit queue (read only; mutate through
    /// [`MacCtx::pop_queue`] / [`MacCtx::queue_head_mut`]).
    pub fn queue(&self) -> &TxQueue {
        &self.world.nodes.queue[self.node.index()]
    }

    /// Mutable head entry for retry bookkeeping.
    pub fn queue_head_mut(&mut self) -> Option<&mut crate::queue::QueuedFrame> {
        self.world.nodes.queue[self.node.index()].head_mut()
    }

    /// Pops the head frame, recording the queue-level change.
    pub fn pop_queue(&mut self) -> Option<crate::queue::QueuedFrame> {
        let now = self.sched.now();
        let queue = &mut self.world.nodes.queue[self.node.index()];
        let popped = queue.pop();
        if popped.is_some() {
            let level = queue.len();
            self.world.metrics.queue_level(self.node, now, level);
        }
        popped
    }

    /// `local queue level − average reported neighbour queue level`,
    /// rounded — the input to QMA's parameter-based exploration
    /// (§4.2).
    ///
    /// Only *fresh* reports count ("the **current** queue level of a
    /// neighbouring node is piggybacked"): entries older than
    /// [`NEIGHBOR_LEVEL_TTL`] expire. This matters under saturation:
    /// a starving neighbour stops transmitting, its stale (full)
    /// report ages out, the local difference rises and exploration
    /// resumes — without the expiry, a fully saturated neighbourhood
    /// reports diff = 0 forever and the region deadlocks with ρ(0)=0.
    /// Neighbours that never piggybacked a level (e.g. a pure sink
    /// before its first frame) count as unknown, so an empty table
    /// yields the local level itself.
    pub fn queue_diff(&self) -> i32 {
        let i = self.node.index();
        queue_diff_value(
            self.sched.now(),
            i,
            &self.world.nodes.queue[i],
            &self.world.neighbor_levels,
        )
    }

    /// Starts a frame transmission on the contention channel. The
    /// frame's `src` and `queue_level` are stamped automatically;
    /// [`MacProtocol::on_tx_end`] fires when the airtime elapses.
    pub fn start_tx(&mut self, frame: Frame) {
        self.world
            .start_tx_internal(self.node, frame, 0, TxOrigin::Mac, self.sched);
    }

    /// Starts a CCA; [`MacProtocol::on_cca_result`] fires after the
    /// 8-symbol window with `busy = true` iff energy was present at
    /// any point of the window.
    pub fn start_cca(&mut self) {
        self.world.start_cca_internal(self.node, self.sched);
    }

    /// Arms (or re-arms) a MAC timer `delay` from now. A
    /// fault-injected clock skew on this node shifts the expiry by
    /// the node's offset (its oscillator runs the timer).
    pub fn set_timer(&mut self, kind: MacTimerKind, delay: SimDuration) {
        let i = self.node.index();
        let gen_slot = &mut self.world.nodes.mac_timer_gen[i][kind.index()];
        *gen_slot += 1;
        let gen = *gen_slot;
        let mut at = self.sched.now() + delay;
        if self.world.nodes.skew_any && self.world.nodes.skew_us[i] != 0 {
            at = self.world.skewed_time(i, at);
        }
        self.sched.schedule_at(
            at,
            Event::MacTimer {
                node: self.node,
                kind,
                gen,
            },
        );
    }

    /// Arms the [`MacTimerKind::Subslot`] timer for the subslot
    /// boundary `(frame_index, subslot)` firing at `at` — the
    /// slot-synchronous fast path. The event goes through the
    /// scheduler's O(1) boundary wheel (when enabled) instead of the
    /// binary heap; delivery order is identical either way. The
    /// armed-tick bit in the world's active set tracks the
    /// non-parked population.
    pub fn set_subslot_timer_at(&mut self, at: SimTime, frame_index: u64, subslot: u16) {
        self.world
            .arm_subslot_tick(self.node, at, frame_index, subslot, self.sched);
    }

    /// Is this node's subslot tick currently armed in the world's
    /// active set? Wheel-scheduled ticks are uncancellable
    /// ([`qma_des::EventKey::DETACHED`]), so a MAC re-arming after a
    /// park **must** consult this bit before enqueueing another tick:
    /// arming while the bit is set would leave two live tick events
    /// for one node (the re-arm double-tick hazard).
    pub fn subslot_tick_armed(&self) -> bool {
        self.world.nodes.tick_armed.get(self.node.index())
    }

    /// Applies a [`TickPlan`] — the world-commit half of a subslot
    /// tick. The sequential engine calls this right after
    /// [`MacProtocol::subslot_decide`]; the sharded engine calls the
    /// same commit in the barrier fold, so both engines execute one
    /// code path in one order.
    pub fn apply_tick_plan(&mut self, plan: TickPlan) {
        self.world.commit_tick_plan(self.node, plan, self.sched);
    }

    /// Builds the node-local [`TickView`] for
    /// [`MacProtocol::subslot_decide`].
    pub fn tick_view(&mut self) -> TickView<'_> {
        let i = self.node.index();
        TickView {
            now: self.sched.now(),
            node: self.node,
            clock: &self.world.clock,
            phy: &self.world.phy,
            queue: &self.world.nodes.queue[i],
            levels: &self.world.neighbor_levels,
            rng: &mut self.world.nodes.mac_rng[i],
            transmitting: self.world.medium.is_transmitting(self.node.phy()),
        }
    }

    /// Records that this node parked its subslot tick (idle, nothing
    /// armed) — clears its bit in the world's armed-tick active set.
    /// Called from the MAC's park transition, which keeps the
    /// bookkeeping off the per-tick hot path.
    pub fn park_subslot_tick(&mut self) {
        self.world.nodes.tick_armed.set(self.node.index(), false);
    }

    /// Cancels a MAC timer class.
    pub fn cancel_timer(&mut self, kind: MacTimerKind) {
        self.world.nodes.mac_timer_gen[self.node.index()][kind.index()] += 1;
    }

    /// Hands a received frame to the upper layer (after this handler
    /// returns).
    pub fn deliver_to_upper(&mut self, frame: Frame) {
        self.world
            .notices
            .push_back(Notice::DeliverUp(self.node, frame));
    }

    /// Reports the final outcome of a transmission chain to metrics
    /// and the upper layer.
    pub fn notify_tx_result(&mut self, frame: Frame, result: TxResult) {
        self.world.metrics.tx_result(self.node, result);
        self.world
            .notices
            .push_back(Notice::TxResultUp(self.node, frame, result));
    }

    /// Metrics collection.
    pub fn metrics(&mut self) -> &mut MetricsHub {
        &mut self.world.metrics
    }

    /// Records an executed subslot action for the Fig. 13–15 maps.
    pub fn record_slot_action(&mut self, subslot: u16, action: SlotAction) {
        self.world.metrics.slot_action(self.node, subslot, action);
    }

    /// Is the medium busy right now at this node (instantaneous
    /// energy detection, not the windowed CCA)?
    pub fn medium_busy(&self) -> bool {
        self.world.medium.is_busy(self.node.phy())
    }

    /// Is this node currently transmitting?
    pub fn transmitting(&self) -> bool {
        self.world.medium.is_transmitting(self.node.phy())
    }
}

/// Context handed to [`UpperLayer`] methods.
pub struct UpperCtx<'a> {
    world: &'a mut World,
    sched: &'a mut Scheduler<Event>,
    /// The node this context is scoped to.
    pub node: NodeId,
}

impl<'a> UpperCtx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// The shared frame clock.
    pub fn clock(&self) -> &FrameClock {
        self.world.clock()
    }

    /// This node's deterministic RNG (independent of the MAC stream).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.world.nodes.upper_rng[self.node.index()]
    }

    /// Enqueues a frame for contention transmission. Returns `false`
    /// (frame dropped) when the queue is full. The MAC is notified
    /// after this handler returns.
    pub fn enqueue_mac(&mut self, frame: Frame) -> bool {
        let now = self.sched.now();
        let queue = &mut self.world.nodes.queue[self.node.index()];
        let ok = queue.push(frame, now);
        if ok {
            let level = queue.len();
            self.world.metrics.queue_level(self.node, now, level);
            self.world.notices.push_back(Notice::MacEnqueued(self.node));
        }
        ok
    }

    /// Current queue length.
    pub fn queue_len(&self) -> usize {
        self.world.nodes.queue[self.node.index()].len()
    }

    /// Schedules [`UpperLayer::on_timer`] with `tag` after `delay`.
    /// Upper timers are one-shot and not cancellable; stale-tag
    /// filtering is the upper layer's responsibility. A crash fault
    /// invalidates all of a node's pending upper timers (the rebooted
    /// upper re-seeds its schedule in [`UpperLayer::start`]).
    pub fn schedule(&mut self, delay: SimDuration, tag: u64) {
        let gen = self.world.nodes.upper_gen[self.node.index()];
        self.sched.schedule_in(
            delay,
            Event::UpperTimer {
                node: self.node,
                tag,
                gen,
            },
        );
    }

    /// Transmits a frame directly on the PHY (bypassing the
    /// contention MAC) on `channel` — the DSME CFP/GTS data path.
    /// [`UpperLayer::on_phy_tx_end`] fires when the airtime elapses.
    pub fn phy_tx(&mut self, frame: Frame, channel: u8) {
        self.world
            .start_tx_internal(self.node, frame, channel, TxOrigin::Upper, self.sched);
    }

    /// Is a transmission from this node currently in flight?
    pub fn tx_in_flight(&self) -> bool {
        self.world.nodes.in_flight[self.node.index()].is_some()
    }

    /// Retunes this node's receiver (GTS channel hopping).
    pub fn set_listen_channel(&mut self, channel: u8) {
        self.world
            .medium
            .set_listen_channel(self.node.phy(), channel);
    }

    /// Metrics collection.
    pub fn metrics(&mut self) -> &mut MetricsHub {
        &mut self.world.metrics
    }
}

/// Factory signature for per-node MAC construction.
pub type MacFactory<M = Box<dyn MacProtocol>> = Box<dyn Fn(NodeId, &FrameClock) -> M>;
/// Factory signature for per-node upper-layer construction.
pub type UpperFactory<U = Box<dyn UpperLayer>> = Box<dyn Fn(NodeId, &FrameClock) -> U>;

// Forwarding impls: a boxed protocol object is itself a protocol
// object. This is what lets `Sim` be generic over the MAC/upper types
// (enum-based static dispatch on the hot path) while `Box<dyn …>`
// factories — tests, exotic uppers — keep working unchanged.
impl<T: MacProtocol + ?Sized> MacProtocol for Box<T> {
    #[inline]
    fn start(&mut self, ctx: &mut MacCtx<'_>) {
        (**self).start(ctx)
    }
    #[inline]
    fn on_timer(&mut self, ctx: &mut MacCtx<'_>, kind: MacTimerKind) {
        (**self).on_timer(ctx, kind)
    }
    #[inline]
    fn on_frame(&mut self, ctx: &mut MacCtx<'_>, frame: &Frame) {
        (**self).on_frame(ctx, frame)
    }
    #[inline]
    fn on_tx_end(&mut self, ctx: &mut MacCtx<'_>) {
        (**self).on_tx_end(ctx)
    }
    #[inline]
    fn on_cca_result(&mut self, ctx: &mut MacCtx<'_>, busy: bool) {
        (**self).on_cca_result(ctx, busy)
    }
    #[inline]
    fn on_enqueue(&mut self, ctx: &mut MacCtx<'_>) {
        (**self).on_enqueue(ctx)
    }
    #[inline]
    fn on_reboot(&mut self, persist_learning: bool) {
        (**self).on_reboot(persist_learning)
    }
    #[inline]
    fn learner_sample(&self) -> Option<LearnerSample> {
        (**self).learner_sample()
    }
    #[inline]
    fn policy_snapshot(&self) -> Option<Vec<SlotAction>> {
        (**self).policy_snapshot()
    }
    #[inline]
    fn supports_split_tick(&self) -> bool {
        (**self).supports_split_tick()
    }
    #[inline]
    fn subslot_decide(&mut self, view: &mut TickView<'_>) -> Option<TickPlan> {
        (**self).subslot_decide(view)
    }
}

impl<T: UpperLayer + ?Sized> UpperLayer for Box<T> {
    #[inline]
    fn start(&mut self, ctx: &mut UpperCtx<'_>) {
        (**self).start(ctx)
    }
    #[inline]
    fn on_timer(&mut self, ctx: &mut UpperCtx<'_>, tag: u64) {
        (**self).on_timer(ctx, tag)
    }
    #[inline]
    fn on_deliver(&mut self, ctx: &mut UpperCtx<'_>, frame: &Frame) {
        (**self).on_deliver(ctx, frame)
    }
    #[inline]
    fn on_tx_result(&mut self, ctx: &mut UpperCtx<'_>, frame: &Frame, result: TxResult) {
        (**self).on_tx_result(ctx, frame, result)
    }
    #[inline]
    fn on_phy_tx_end(&mut self, ctx: &mut UpperCtx<'_>, frame: &Frame, delivered: &[NodeId]) {
        (**self).on_phy_tx_end(ctx, frame, delivered)
    }
}

/// Builder for a [`Sim`].
///
/// Generic over the MAC (`M`) and upper-layer (`U`) types stored per
/// node. The defaults are boxed trait objects, so factories returning
/// `Box<dyn …>` work exactly as before; installing a factory that
/// returns a concrete type (e.g. an enum over all protocol variants)
/// switches the whole event hot path to static dispatch.
pub struct SimBuilder<M = Box<dyn MacProtocol>, U = Box<dyn UpperLayer>> {
    conn: Connectivity,
    channels: u8,
    clock: FrameClock,
    phy: PhyTiming,
    power: PowerProfile,
    queue_capacity: usize,
    seed: u64,
    mac_factory: Option<MacFactory<M>>,
    upper_factory: UpperFactory<U>,
    node_starts: BTreeMap<u32, SimTime>,
    record_learner: bool,
    scheduler_wheel: bool,
    shards: usize,
    shard_batch_min: usize,
    shard_pool: bool,
    fault_plan: Option<crate::faults::FaultPlan>,
    past_clamp_budget: u64,
}

/// Process-wide default for [`SimBuilder::scheduler_wheel`] — `true`
/// unless overridden. Exists so wheel-vs-heap equivalence tests and
/// benchmarks can flip the scheduling engine underneath code (e.g.
/// campaign runs) that builds its simulations internally.
static SCHEDULER_WHEEL_DEFAULT: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(true);

/// Sets the process-wide default for the boundary-wheel scheduler
/// (see [`SimBuilder::scheduler_wheel`]). Intended for equivalence
/// tests and benchmarks; simulations built afterwards pick it up.
pub fn set_default_scheduler_wheel(enabled: bool) {
    SCHEDULER_WHEEL_DEFAULT.store(enabled, std::sync::atomic::Ordering::SeqCst);
}

/// The current process-wide boundary-wheel default.
pub fn default_scheduler_wheel() -> bool {
    SCHEDULER_WHEEL_DEFAULT.load(std::sync::atomic::Ordering::SeqCst)
}

/// Process-wide default for [`SimBuilder::shards`] — `1` (no
/// sharding) unless overridden. Exists so the campaign binary's
/// `--shards` flag (and shard-equivalence tests) can flip the
/// execution engine underneath code that builds its simulations
/// internally, exactly like the scheduler-wheel default above.
static SHARDS_DEFAULT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(1);

/// Sets the process-wide default shard count (see
/// [`SimBuilder::shards`]). Values below 1 are treated as 1.
pub fn set_default_shards(shards: usize) {
    SHARDS_DEFAULT.store(shards.max(1), std::sync::atomic::Ordering::SeqCst);
}

/// The current process-wide shard-count default.
pub fn default_shards() -> usize {
    SHARDS_DEFAULT.load(std::sync::atomic::Ordering::SeqCst)
}

/// Default for [`SimBuilder::shard_batch_min`]: boundary buckets
/// smaller than this run sequentially even when sharding is on — the
/// per-barrier fork/join overhead needs a population to amortise over.
pub const SHARD_BATCH_MIN_DEFAULT: usize = 192;

/// Process-wide default for [`SimBuilder::shard_batch_min`].
static SHARD_BATCH_MIN: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(SHARD_BATCH_MIN_DEFAULT);

/// Sets the process-wide default for
/// [`SimBuilder::shard_batch_min`] — equivalence tests force the
/// parallel sweep onto small worlds by lowering it to 1.
pub fn set_default_shard_batch_min(min: usize) {
    SHARD_BATCH_MIN.store(min.max(1), std::sync::atomic::Ordering::SeqCst);
}

/// The current process-wide shard-batch-minimum default.
pub fn default_shard_batch_min() -> usize {
    SHARD_BATCH_MIN.load(std::sync::atomic::Ordering::SeqCst)
}

/// Process-wide default for [`SimBuilder::shard_pool`] — `true`
/// unless overridden. Exists so the determinism suite can pin the
/// scoped fork/join path underneath scenario code that builds its
/// simulations internally, and diff it against the pool.
static SHARD_POOL_DEFAULT: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Sets the process-wide default for the persistent shard worker pool
/// (see [`SimBuilder::shard_pool`]).
pub fn set_default_shard_pool(enabled: bool) {
    SHARD_POOL_DEFAULT.store(enabled, std::sync::atomic::Ordering::SeqCst);
}

/// The current process-wide shard-pool default.
pub fn default_shard_pool() -> bool {
    SHARD_POOL_DEFAULT.load(std::sync::atomic::Ordering::SeqCst)
}

impl SimBuilder {
    /// Starts a builder over a connectivity graph with a master seed.
    pub fn new(conn: Connectivity, seed: u64) -> Self {
        SimBuilder {
            conn,
            channels: 1,
            clock: FrameClock::dsme_so3(),
            phy: PhyTiming::oqpsk_2_4ghz(),
            power: PowerProfile::default(),
            queue_capacity: 8,
            seed,
            mac_factory: None,
            upper_factory: Box::new(|_, _| Box::new(NullUpper) as Box<dyn UpperLayer>),
            node_starts: BTreeMap::new(),
            record_learner: true,
            scheduler_wheel: default_scheduler_wheel(),
            shards: default_shards(),
            shard_batch_min: default_shard_batch_min(),
            shard_pool: default_shard_pool(),
            fault_plan: None,
            past_clamp_budget: u64::MAX,
        }
    }
}

impl<M: MacProtocol, U: UpperLayer> SimBuilder<M, U> {
    /// Sets the frame clock (default: DSME SO=3 with 54 subslots).
    pub fn clock(mut self, clock: FrameClock) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the number of orthogonal channels (default 1).
    pub fn channels(mut self, channels: u8) -> Self {
        self.channels = channels;
        self
    }

    /// Sets the MAC queue capacity (default 8, as in the paper).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the per-state power profile for energy accounting.
    pub fn power_profile(mut self, power: PowerProfile) -> Self {
        self.power = power;
        self
    }

    /// Installs the MAC factory (required). The factory's return type
    /// selects the dispatch mode: a concrete type (enum) gives static
    /// dispatch, `Box<dyn MacProtocol>` the classic dynamic dispatch.
    pub fn mac_factory<M2, F>(self, f: F) -> SimBuilder<M2, U>
    where
        M2: MacProtocol,
        F: Fn(NodeId, &FrameClock) -> M2 + 'static,
    {
        SimBuilder {
            conn: self.conn,
            channels: self.channels,
            clock: self.clock,
            phy: self.phy,
            power: self.power,
            queue_capacity: self.queue_capacity,
            seed: self.seed,
            mac_factory: Some(Box::new(f)),
            upper_factory: self.upper_factory,
            node_starts: self.node_starts,
            record_learner: self.record_learner,
            scheduler_wheel: self.scheduler_wheel,
            shards: self.shards,
            shard_batch_min: self.shard_batch_min,
            shard_pool: self.shard_pool,
            fault_plan: self.fault_plan,
            past_clamp_budget: self.past_clamp_budget,
        }
    }

    /// Installs the upper-layer factory (default: no-op upper). Like
    /// [`SimBuilder::mac_factory`], the return type selects static or
    /// dynamic dispatch.
    pub fn upper_factory<U2, F>(self, f: F) -> SimBuilder<M, U2>
    where
        U2: UpperLayer,
        F: Fn(NodeId, &FrameClock) -> U2 + 'static,
    {
        SimBuilder {
            conn: self.conn,
            channels: self.channels,
            clock: self.clock,
            phy: self.phy,
            power: self.power,
            queue_capacity: self.queue_capacity,
            seed: self.seed,
            mac_factory: self.mac_factory,
            upper_factory: Box::new(f),
            node_starts: self.node_starts,
            record_learner: self.record_learner,
            scheduler_wheel: self.scheduler_wheel,
            shards: self.shards,
            shard_batch_min: self.shard_batch_min,
            shard_pool: self.shard_pool,
            fault_plan: self.fault_plan,
            past_clamp_budget: self.past_clamp_budget,
        }
    }

    /// Delays a node's activation (e.g. Fig. 12's node C joins the
    /// network 100 s after node A).
    pub fn node_start(mut self, node: NodeId, at: SimTime) -> Self {
        self.node_starts.insert(node.0, at);
        self
    }

    /// Enables/disables per-frame learner sampling (default on).
    pub fn record_learner(mut self, on: bool) -> Self {
        self.record_learner = on;
        self
    }

    /// Enables/disables the O(1) boundary-wheel scheduling of subslot
    /// ticks (default: the process-wide default, normally on).
    /// Disabling it routes every event through the binary heap —
    /// results are bit-identical either way; the flag exists for
    /// equivalence tests and wheel-vs-heap benchmarks.
    pub fn scheduler_wheel(mut self, on: bool) -> Self {
        self.scheduler_wheel = on;
        self
    }

    /// Shards one replication's boundary sweep across `k` worker
    /// threads (default: the process-wide default, normally 1). The
    /// node population is partitioned into `k` contiguous ranges —
    /// spatial tiles on the row-major grid, hash-ring chunks on the
    /// hidden star — and at every subslot boundary each shard computes
    /// its nodes' tick decisions in parallel; world effects are then
    /// committed in the deterministic ascending bucket order, so
    /// results are **bit-identical for every `k`**. Requires the
    /// boundary wheel and a population whose MACs all implement the
    /// decide/commit split; anything else falls back to the sequential
    /// engine (same results, one core).
    pub fn shards(mut self, k: usize) -> Self {
        self.shards = k.max(1);
        self
    }

    /// Minimum boundary-bucket population for the parallel sweep
    /// (default [`SHARD_BATCH_MIN_DEFAULT`]); smaller buckets run
    /// sequentially. Exposed so equivalence tests can force the
    /// parallel path on small worlds.
    pub fn shard_batch_min(mut self, min: usize) -> Self {
        self.shard_batch_min = min.max(1);
        self
    }

    /// Runs the sharded boundary sweep on a persistent condvar-parked
    /// worker pool (default: the process-wide default, normally on)
    /// instead of a per-boundary `std::thread::scope` fork/join.
    /// Results are **bit-identical either way** — the pool changes
    /// where decide tasks run, never what they compute — and the
    /// determinism suite diffs the two paths to prove it. Irrelevant
    /// for single-shard plans (no threads either way).
    pub fn shard_pool(mut self, on: bool) -> Self {
        self.shard_pool = on;
        self
    }

    /// Arms a deterministic fault schedule (see [`crate::faults`]).
    /// The plan's events are scheduled as first-class DES events at
    /// build time; an armed-but-empty plan costs nothing measurable.
    pub fn fault_plan(mut self, plan: crate::faults::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Caps the number of past-time schedules (clock-skew faults push
    /// timers into the past, which the scheduler clamps and counts)
    /// before the run aborts with a structured
    /// [`PastClampBudgetExceeded`] error instead of silently
    /// simulating garbage. Default: unlimited. Setting any budget
    /// also switches the scheduler to tolerant clamping (counting
    /// instead of the debug-build panic).
    pub fn past_clamp_budget(mut self, budget: u64) -> Self {
        self.past_clamp_budget = budget;
        self
    }

    /// Builds the simulation.
    ///
    /// # Panics
    ///
    /// Panics if no MAC factory was installed.
    pub fn build(self) -> Sim<M, U> {
        let mac_factory = self.mac_factory.expect("a MAC factory is required");
        let n = self.conn.len();
        let plan = qma_des::ShardPlan::contiguous(n, self.shards);
        // The spatial medium partition (border classification) only
        // exists for sharded runs; K = 1 has no borders by definition.
        let partition = (plan.shards() > 1)
            .then(|| qma_phy::MediumPartition::from_bounds(&self.conn, plan.bounds()));
        let seeds = SeedSequence::new(self.seed);
        let nodes = Nodes {
            queue: (0..n).map(|_| TxQueue::new(self.queue_capacity)).collect(),
            energy: vec![EnergyMeter::new(self.power); n],
            in_flight: (0..n).map(|_| None).collect(),
            cca: (0..n).map(|_| None).collect(),
            cca_gen: vec![0; n],
            mac_timer_gen: vec![[0; MacTimerKind::COUNT]; n],
            tx_gen: vec![0; n],
            upper_gen: vec![0; n],
            skew_us: vec![0; n],
            skew_any: false,
            mac_rng: (0..n)
                .map(|i| seeds.derive(1).derive(i as u64).rng())
                .collect(),
            upper_rng: (0..n)
                .map(|i| seeds.derive(2).derive(i as u64).rng())
                .collect(),
            enabled: ActiveSet::new(n),
            tick_armed: ActiveSet::new(n),
        };
        let neighbor_levels = NeighborLevels::new(&self.conn);
        let subslots = self.clock.subslots();
        let macs: Vec<M> = (0..n)
            .map(|i| mac_factory(NodeId(i as u32), &self.clock))
            .collect();
        let uppers: Vec<U> = (0..n)
            .map(|i| (self.upper_factory)(NodeId(i as u32), &self.clock))
            .collect();

        let mut sched = Scheduler::new();
        if self.scheduler_wheel {
            // Subslot ticks are armed at most one frame ahead; two
            // frames of boundaries comfortably cover every in-window
            // insert (out-of-window ones fall back to the heap).
            sched.enable_wheel(2 * (subslots as usize + 2));
        }
        sched.schedule_at(SimTime::ZERO, Event::Start);
        // BTreeMap order: EnableNode events for nodes sharing a start
        // instant are inserted in node-id order, so heap FIFO
        // tie-breaking is identical in every process.
        for (i, &t) in &self.node_starts {
            if t > SimTime::ZERO {
                sched.schedule_at(t, Event::EnableNode { node: NodeId(*i) });
            }
        }

        // Fault events are heap-scheduled in plan order, so ties at
        // one instant fire in authoring order and the sharded sweep
        // serialises around them (see `crate::faults`). A budget or
        // an armed plan declares past-time clamps expected — counted
        // against the budget instead of the debug-build panic.
        if self.past_clamp_budget != u64::MAX || self.fault_plan.is_some() {
            sched.set_clamp_tolerant(true);
        }
        if let Some(plan) = &self.fault_plan {
            for (idx, ev) in plan.events().iter().enumerate() {
                sched.schedule_at(ev.at, Event::Fault { idx: idx as u32 });
            }
        }

        // The sharded sweep only engages when every node's MAC opted
        // into the decide/commit split; a single legacy MAC in the
        // population falls the whole run back to sequential delivery.
        let split_ticks = self.scheduler_wheel && macs.iter().all(|m| m.supports_split_tick());
        let shard_scratch = ShardScratch::new(plan.shards());
        // One persistent pool per simulation (K − 1 threads: the
        // driver thread participates in every barrier), parked on a
        // condvar between boundaries. Only built when the sharded
        // sweep can actually engage.
        let shard_pool = (self.shard_pool && plan.shards() > 1 && split_ticks)
            .then(|| qma_des::ShardPool::new(plan.shards() - 1));

        Sim {
            world: World {
                medium: Medium::with_channels(self.conn, self.channels),
                clock: self.clock,
                phy: self.phy,
                nodes,
                neighbor_levels,
                metrics: MetricsHub::new(n, subslots),
                notices: std::collections::VecDeque::new(),
            },
            macs,
            uppers,
            sched,
            node_starts: self.node_starts,
            record_learner: self.record_learner,
            delivered_scratch: Vec::new(),
            plan,
            partition,
            split_ticks,
            shard_batch_min: self.shard_batch_min,
            batch_scratch: Vec::new(),
            shard_scratch,
            shard_pool,
            fault_plan: self.fault_plan,
            past_clamp_budget: self.past_clamp_budget,
        }
    }
}

/// Reusable per-barrier buffers of the sharded sweep: one tick slate
/// and one commit outbox per shard, drained every boundary but never
/// deallocated — the boundary path stays allocation-free in steady
/// state.
struct ShardScratch {
    /// Per-shard `(bucket position, node id, timer generation)` tick
    /// slates, filled while bucketing a drained boundary batch.
    slates: Vec<Vec<(u32, u32, u64)>>,
    /// Per-shard `(bucket position, (node, plan))` outboxes — the
    /// boundary-exchange staging the barrier fold consumes.
    outboxes: Vec<Vec<(u32, (NodeId, TickPlan))>>,
}

impl ShardScratch {
    fn new(shards: usize) -> Self {
        ShardScratch {
            slates: (0..shards).map(|_| Vec::new()).collect(),
            outboxes: (0..shards).map(|_| Vec::new()).collect(),
        }
    }
}

/// A runnable simulation.
///
/// `M` and `U` are the per-node MAC and upper-layer types; see
/// [`SimBuilder`] for how they are chosen.
pub struct Sim<M = Box<dyn MacProtocol>, U = Box<dyn UpperLayer>> {
    world: World,
    macs: Vec<M>,
    uppers: Vec<U>,
    sched: Scheduler<Event>,
    node_starts: BTreeMap<u32, SimTime>,
    record_learner: bool,
    /// Reusable buffer for the enabled clean receivers of a
    /// transmission (the per-`TxEnd` delivered set).
    delivered_scratch: Vec<NodeId>,
    /// Contiguous spatial shard plan (one shard ⇒ sequential engine).
    plan: qma_des::ShardPlan,
    /// Border classification of the partitioned medium (sharded runs
    /// only).
    partition: Option<qma_phy::MediumPartition>,
    /// Every MAC supports the decide/commit tick split.
    split_ticks: bool,
    /// Boundary buckets below this size run sequentially.
    shard_batch_min: usize,
    /// Reusable drained-boundary-bucket buffer.
    batch_scratch: Vec<(SimTime, Event)>,
    /// Reusable per-shard slates/outboxes.
    shard_scratch: ShardScratch,
    /// Persistent decide workers (`None` ⇒ per-boundary scoped
    /// fork/join, or an unsharded plan).
    shard_pool: Option<qma_des::ShardPool>,
    /// The armed fault schedule, if any (see [`crate::faults`]).
    fault_plan: Option<crate::faults::FaultPlan>,
    /// Abort threshold for past-time clamps (`u64::MAX` = unlimited).
    past_clamp_budget: u64,
}

/// A replication exceeded its [`SimBuilder::past_clamp_budget`]:
/// fault-injected clock skew pushed more events into the past than
/// the scenario declared tolerable, so the run aborted instead of
/// silently simulating garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PastClampBudgetExceeded {
    /// Past-time schedules observed when the run aborted.
    pub past_clamps: u64,
    /// The configured budget.
    pub budget: u64,
    /// Simulated time at the abort.
    pub at: SimTime,
}

impl std::fmt::Display for PastClampBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "past-clamp budget exceeded: {} past-time schedules > budget {} at t={:.6}s",
            self.past_clamps,
            self.budget,
            self.at.as_secs_f64()
        )
    }
}

impl std::error::Error for PastClampBudgetExceeded {}

impl<M: MacProtocol, U: UpperLayer> Sim<M, U> {
    /// Runs until simulated time `horizon`, then closes metrics.
    ///
    /// # Panics
    ///
    /// Panics when the [`SimBuilder::past_clamp_budget`] is exceeded
    /// (use [`Sim::try_run_until`] to handle that case as a value).
    pub fn run_until(&mut self, horizon: SimTime) {
        if let Err(e) = self.try_run_until(horizon) {
            panic!("{e}");
        }
    }

    /// Like [`Sim::run_until`], but reports a blown past-clamp budget
    /// as a structured error instead of panicking. Metrics are not
    /// closed on the error path — the replication is garbage by
    /// definition.
    pub fn try_run_until(&mut self, horizon: SimTime) -> Result<(), PastClampBudgetExceeded> {
        /// One shard's slice of a boundary bucket: everything phase 1
        /// of the sharded sweep needs to decide its ticks without
        /// touching shared mutable state. Built per boundary from
        /// disjoint `split_at_mut` slices; executed on the persistent
        /// pool or a scoped thread — bit-identical either way, since
        /// the job only writes its own slices and outbox and the
        /// commit fold replays in global bucket order.
        struct DecideJob<'a, M> {
            now: SimTime,
            base: usize,
            sub: usize,
            slate: &'a [(u32, u32, u64)],
            macs: &'a mut [M],
            rngs: &'a mut [StdRng],
            outbox: &'a mut Vec<(u32, (NodeId, TickPlan))>,
            queues: &'a [TxQueue],
            gens: &'a [[u64; MacTimerKind::COUNT]],
            enabled: &'a ActiveSet,
            levels: &'a NeighborLevels,
            medium: &'a Medium,
            clock: &'a FrameClock,
            phy: &'a PhyTiming,
        }

        impl<M: MacProtocol> DecideJob<'_, M> {
            fn run(&mut self) {
                for &(pos, node, gen) in self.slate {
                    let i = node as usize;
                    // The same validity gate the sequential dispatcher
                    // applies; no commit in this bucket can change
                    // another node's verdict.
                    if !self.enabled.get(i) || self.gens[i][self.sub] != gen {
                        continue;
                    }
                    let mut view = TickView {
                        now: self.now,
                        node: NodeId(node),
                        clock: self.clock,
                        phy: self.phy,
                        queue: &self.queues[i],
                        levels: self.levels,
                        rng: &mut self.rngs[i - self.base],
                        transmitting: self.medium.is_transmitting(qma_phy::PhyNodeId(node)),
                    };
                    let decided = self.macs[i - self.base]
                        .subslot_decide(&mut view)
                        .expect("split-tick MAC must return a plan");
                    self.outbox.push((pos, (NodeId(node), decided)));
                }
            }
        }

        struct Driver<'s, M, U> {
            world: &'s mut World,
            macs: &'s mut [M],
            uppers: &'s mut [U],
            node_starts: &'s BTreeMap<u32, SimTime>,
            record_learner: bool,
            /// The armed fault schedule's events (empty when none).
            faults: &'s [crate::faults::FaultEvent],
            /// Enabled clean receivers of the `TxEnd` being handled.
            delivered: &'s mut Vec<NodeId>,
        }

        impl<M: MacProtocol, U: UpperLayer> Driver<'_, M, U> {
            fn enable_node(&mut self, node: NodeId, sched: &mut Scheduler<Event>) {
                self.world.nodes.enabled.set(node.index(), true);
                let mut mctx = MacCtx {
                    world: self.world,
                    sched,
                    node,
                };
                self.macs[node.index()].start(&mut mctx);
                let mut uctx = UpperCtx {
                    world: self.world,
                    sched,
                    node,
                };
                self.uppers[node.index()].start(&mut uctx);
            }

            /// Power-fails a node: radio off, every pending event
            /// generation invalidated, queue contents lost, any
            /// transmission in flight aborted mid-air. MAC and upper
            /// objects keep their (now unreachable) state until the
            /// reboot decides what survives.
            fn crash_node(&mut self, node: NodeId, sched: &mut Scheduler<Event>) {
                let i = node.index();
                if !self.world.nodes.enabled.get(i) {
                    return; // already down (or never started)
                }
                let now = sched.now();
                let nodes = &mut self.world.nodes;
                nodes.enabled.set(i, false);
                nodes.tick_armed.set(i, false);
                for g in nodes.mac_timer_gen[i].iter_mut() {
                    *g += 1;
                }
                nodes.cca_gen[i] += 1;
                nodes.cca[i] = None;
                nodes.tx_gen[i] += 1;
                nodes.upper_gen[i] += 1;
                if let Some((token, _, _)) = nodes.in_flight[i].take() {
                    self.world.medium.abort_tx(token);
                }
                self.world.medium.drop_rx_lock(node.phy());
                let lost = {
                    let queue = &mut self.world.nodes.queue[i];
                    let mut lost = 0u64;
                    while queue.pop().is_some() {
                        lost += 1;
                    }
                    lost
                };
                self.world.nodes.energy[i]
                    .set_activity(now.as_micros(), qma_phy::RadioActivity::Sleep);
                if lost > 0 {
                    // Queue wipe is a *fault* loss, not a MAC drop —
                    // tracked separately so resilience metrics can
                    // attribute it.
                    self.world.metrics.count("fault_frames_lost", lost as f64);
                }
                self.world.metrics.queue_level(node, now, 0);
                self.world.metrics.count("fault_crashes", 1.0);
            }

            /// Brings a crashed node back: volatile MAC state is reset
            /// (policy optionally persisted), then the normal start
            /// sequence runs — the MAC re-arms its tick, the upper
            /// re-seeds its traffic schedule.
            fn reboot_node(
                &mut self,
                node: NodeId,
                persist_learning: bool,
                sched: &mut Scheduler<Event>,
            ) {
                if self.world.nodes.enabled.get(node.index()) {
                    return; // already up
                }
                self.macs[node.index()].on_reboot(persist_learning);
                self.world.metrics.count("fault_reboots", 1.0);
                self.enable_node(node, sched);
            }

            /// Applies one scheduled fault event. Cold by
            /// construction: plans hold a handful of events per run.
            #[cold]
            fn apply_fault(&mut self, idx: u32, sched: &mut Scheduler<Event>) {
                use crate::faults::FaultKind;
                // Reborrow the plan slice outside `self` so the match
                // arms can take `&mut self` freely.
                let faults = self.faults;
                match &faults[idx as usize].kind {
                    FaultKind::Crash { node } => self.crash_node(NodeId(*node), sched),
                    FaultKind::Reboot {
                        node,
                        persist_learning,
                    } => self.reboot_node(NodeId(*node), *persist_learning, sched),
                    FaultKind::JamStart { nodes } => {
                        for &n in nodes {
                            self.world.medium.set_jammed(PhyNodeId(n), true);
                            // A CCA window straddling the jam onset
                            // sees the jammer's energy.
                            if let Some(cca) = &mut self.world.nodes.cca[n as usize] {
                                cca.saw_energy = true;
                            }
                        }
                        self.world.metrics.count("fault_jam_bursts", 1.0);
                    }
                    FaultKind::JamEnd { nodes } => {
                        for &n in nodes {
                            self.world.medium.set_jammed(PhyNodeId(n), false);
                        }
                    }
                    FaultKind::DegradeLinks { links } => {
                        for &(t, r) in links {
                            self.world
                                .medium
                                .set_link_degraded(PhyNodeId(t), PhyNodeId(r), true);
                        }
                        self.world.metrics.count("fault_drift_episodes", 1.0);
                    }
                    FaultKind::RestoreLinks { links } => {
                        for &(t, r) in links {
                            self.world
                                .medium
                                .set_link_degraded(PhyNodeId(t), PhyNodeId(r), false);
                        }
                    }
                    FaultKind::ClockSkew { nodes, offset_us } => {
                        for &n in nodes {
                            self.world.nodes.skew_us[n as usize] = *offset_us;
                        }
                        if *offset_us != 0 {
                            self.world.nodes.skew_any = true;
                        }
                        self.world.metrics.count("fault_skew_events", 1.0);
                    }
                }
            }

            /// One drained boundary bucket through the sharded sweep:
            /// bucket the ticks by owning shard, decide in parallel
            /// (node-local state only), then commit through the
            /// barrier fold in exact bucket order. Results are
            /// bit-identical to sequential delivery by construction —
            /// decisions of distinct nodes read no state any
            /// same-instant commit writes, and the commits replay in
            /// the sequential order.
            fn handle_subslot_batch(
                &mut self,
                batch: &mut Vec<(SimTime, Event)>,
                sched: &mut Scheduler<Event>,
                plan: &qma_des::ShardPlan,
                scratch: &mut ShardScratch,
                pool: Option<&mut qma_des::ShardPool>,
            ) {
                for slate in scratch.slates.iter_mut() {
                    slate.clear();
                }
                // Only subslot ticks travel through the wheel today;
                // anything else falls the whole batch back to
                // sequential delivery (exact order either way).
                let mut plain = true;
                for (pos, (_, ev)) in batch.iter().enumerate() {
                    match ev {
                        Event::MacTimer {
                            node,
                            kind: MacTimerKind::Subslot,
                            gen,
                        } => {
                            scratch.slates[plan.shard_of(node.index())]
                                .push((pos as u32, node.0, *gen));
                        }
                        _ => {
                            plain = false;
                            break;
                        }
                    }
                }
                if !plain {
                    for (t, ev) in batch.drain(..) {
                        self.handle(t, ev, sched);
                    }
                    return;
                }

                let now = batch[0].0;
                {
                    // Phase 1 — parallel decide. Each shard owns a
                    // disjoint `&mut` slice of the MACs and RNGs
                    // (contiguous plan ⇒ `split_at_mut`); queues,
                    // neighbour levels, medium, clock and PHY are
                    // shared read-only, and no commit runs until every
                    // worker has joined — the wheel-cursor barrier.
                    // The jobs run either on the persistent shard pool
                    // (default) or on per-boundary scoped threads;
                    // identical results by construction, since a job
                    // only writes its own slices and outbox.
                    let world = &mut *self.world;
                    let nodes = &mut world.nodes;
                    let queues: &[TxQueue] = &nodes.queue;
                    let gens: &[[u64; MacTimerKind::COUNT]] = &nodes.mac_timer_gen;
                    let enabled = &nodes.enabled;
                    let levels = &world.neighbor_levels;
                    let medium = &world.medium;
                    let clock = &world.clock;
                    let phy = &world.phy;
                    let sub = MacTimerKind::Subslot.index();
                    let mut mac_rest: &mut [M] = &mut *self.macs;
                    let mut rng_rest: &mut [StdRng] = &mut nodes.mac_rng;
                    let mut jobs: Vec<DecideJob<'_, M>> = Vec::with_capacity(plan.shards());
                    for (s, outbox) in scratch.outboxes.iter_mut().enumerate() {
                        let range = plan.range(s);
                        let (macs_s, mac_tail) = mac_rest.split_at_mut(range.len());
                        mac_rest = mac_tail;
                        let (rngs_s, rng_tail) = rng_rest.split_at_mut(range.len());
                        rng_rest = rng_tail;
                        let slate: &[(u32, u32, u64)] = &scratch.slates[s];
                        if slate.is_empty() {
                            continue;
                        }
                        jobs.push(DecideJob {
                            now,
                            base: range.start,
                            sub,
                            slate,
                            macs: macs_s,
                            rngs: rngs_s,
                            outbox,
                            queues,
                            gens,
                            enabled,
                            levels,
                            medium,
                            clock,
                            phy,
                        });
                    }
                    match pool {
                        Some(pool) => {
                            let mut closures: Vec<_> =
                                jobs.iter_mut().map(|job| move || job.run()).collect();
                            let mut refs: Vec<&mut (dyn FnMut() + Send)> = closures
                                .iter_mut()
                                .map(|c| c as &mut (dyn FnMut() + Send))
                                .collect();
                            pool.scope_run(&mut refs);
                        }
                        None => {
                            std::thread::scope(|scope| {
                                for job in jobs.iter_mut() {
                                    scope.spawn(move || job.run());
                                }
                            });
                        }
                    }
                }

                // Phase 2 — the boundary exchange: fold the per-shard
                // outboxes back in ascending bucket position, which is
                // exactly the sequential processing order (and is
                // independent of the shard count).
                qma_des::merge_by_pos(&mut scratch.outboxes, |_pos, (node, decided)| {
                    self.world.commit_tick_plan(node, decided, sched);
                });
                batch.clear();
                if !self.world.notices.is_empty() {
                    self.drain_notices(sched);
                }
            }

            /// Cold outlined part of notice draining; the hot per-event
            /// check is the inline `is_empty` in `handle`.
            fn drain_notices(&mut self, sched: &mut Scheduler<Event>) {
                while let Some(notice) = self.world.notices.pop_front() {
                    match notice {
                        Notice::DeliverUp(node, frame) => {
                            let mut ctx = UpperCtx {
                                world: self.world,
                                sched,
                                node,
                            };
                            self.uppers[node.index()].on_deliver(&mut ctx, &frame);
                        }
                        Notice::TxResultUp(node, frame, result) => {
                            let mut ctx = UpperCtx {
                                world: self.world,
                                sched,
                                node,
                            };
                            self.uppers[node.index()].on_tx_result(&mut ctx, &frame, result);
                        }
                        Notice::MacEnqueued(node) => {
                            let mut ctx = MacCtx {
                                world: self.world,
                                sched,
                                node,
                            };
                            self.macs[node.index()].on_enqueue(&mut ctx);
                        }
                        Notice::UpperPhyTxEnd(node, frame, delivered) => {
                            let mut ctx = UpperCtx {
                                world: self.world,
                                sched,
                                node,
                            };
                            self.uppers[node.index()].on_phy_tx_end(&mut ctx, &frame, &delivered);
                        }
                    }
                }
            }
        }

        impl<M: MacProtocol, U: UpperLayer> Handler<Event> for Driver<'_, M, U> {
            fn handle(&mut self, now: SimTime, event: Event, sched: &mut Scheduler<Event>) {
                match event {
                    Event::Start => {
                        let n = self.world.nodes.len();
                        for i in 0..n {
                            let node = NodeId(i as u32);
                            let starts_later = self
                                .node_starts
                                .get(&node.0)
                                .map(|&t| t > SimTime::ZERO)
                                .unwrap_or(false);
                            if !starts_later {
                                self.enable_node(node, sched);
                            }
                        }
                        if self.record_learner {
                            sched.schedule_in(
                                self.world.clock.frame_duration(),
                                Event::FrameBoundary,
                            );
                        }
                    }
                    Event::EnableNode { node } => {
                        self.enable_node(node, sched);
                    }
                    Event::FrameBoundary => {
                        // Cache-linear sweep over the enabled set —
                        // word-at-a-time over the active-set bitmap,
                        // not an n-wide scan.
                        let enabled = std::mem::take(&mut self.world.nodes.enabled);
                        for i in enabled.iter() {
                            if let Some(sample) = self.macs[i].learner_sample() {
                                self.world
                                    .metrics
                                    .learner_sample(NodeId(i as u32), now, sample);
                            }
                        }
                        self.world.nodes.enabled = enabled;
                        sched.schedule_in(self.world.clock.frame_duration(), Event::FrameBoundary);
                    }
                    Event::MacTimer { node, kind, gen } => {
                        let i = node.index();
                        if !self.world.nodes.enabled.get(i)
                            || self.world.nodes.mac_timer_gen[i][kind.index()] != gen
                        {
                            return;
                        }
                        let mut ctx = MacCtx {
                            world: self.world,
                            sched,
                            node,
                        };
                        self.macs[i].on_timer(&mut ctx, kind);
                    }
                    Event::UpperTimer { node, tag, gen } => {
                        if !self.world.nodes.enabled.get(node.index())
                            || self.world.nodes.upper_gen[node.index()] != gen
                        {
                            return;
                        }
                        let mut ctx = UpperCtx {
                            world: self.world,
                            sched,
                            node,
                        };
                        self.uppers[node.index()].on_timer(&mut ctx, tag);
                    }
                    Event::TxEnd { node, gen } => {
                        if self.world.nodes.tx_gen[node.index()] != gen {
                            // The frame was aborted mid-air by a
                            // crash fault; the medium already
                            // reconciled its energy.
                            return;
                        }
                        let (token, frame, origin) = self.world.nodes.in_flight[node.index()]
                            .take()
                            .expect("TxEnd without in-flight frame");
                        self.world.nodes.energy[node.index()]
                            .set_activity(now.as_micros(), qma_phy::RadioActivity::Listen);
                        // `end_tx` hands back a slice of the medium's
                        // scratch buffer; the enabled-filtered copy
                        // lives in the driver's reusable buffer — no
                        // allocation on this path.
                        let clean = self.world.medium.end_tx(token);
                        self.delivered.clear();
                        self.delivered.extend(
                            clean
                                .iter()
                                .map(|p| NodeId(p.0))
                                .filter(|r| self.world.nodes.enabled.get(r.index())),
                        );

                        // Queue-level piggyback: every frame is
                        // stamped with its sender's queue level at
                        // transmission time, so receivers track the
                        // backlog of all audible neighbours — data
                        // frames as in the paper (§4.2), plus ACKs,
                        // which keeps a pure sink's (empty) level
                        // visible and lets a draining forwarder
                        // release its neighbours' exploration.
                        for &r in self.delivered.iter() {
                            self.world.neighbor_levels.set(
                                r.index(),
                                frame.src.0,
                                frame.queue_level,
                                now,
                            );
                        }

                        match origin {
                            TxOrigin::Mac => {
                                let mut ctx = MacCtx {
                                    world: self.world,
                                    sched,
                                    node,
                                };
                                self.macs[node.index()].on_tx_end(&mut ctx);
                            }
                            TxOrigin::Upper => {
                                // Cold path (DSME CFP/GTS data): the
                                // notice needs owned copies because
                                // the overhearing loop below still
                                // reads the originals.
                                self.world.notices.push_back(Notice::UpperPhyTxEnd(
                                    node,
                                    frame.clone(),
                                    self.delivered.clone(),
                                ));
                            }
                        }

                        for k in 0..self.delivered.len() {
                            let r = self.delivered[k];
                            let mut ctx = MacCtx {
                                world: self.world,
                                sched,
                                node: r,
                            };
                            self.macs[r.index()].on_frame(&mut ctx, &frame);
                        }
                    }
                    Event::CcaEnd { node, gen } => {
                        let cca = &mut self.world.nodes.cca[node.index()];
                        let valid = cca.as_ref().map(|c| c.gen == gen).unwrap_or(false);
                        if !valid {
                            return;
                        }
                        let saw = cca.take().expect("checked above").saw_energy;
                        let busy = saw || self.world.medium.is_busy(node.phy());
                        if !self.world.nodes.enabled.get(node.index()) {
                            return;
                        }
                        let mut ctx = MacCtx {
                            world: self.world,
                            sched,
                            node,
                        };
                        self.macs[node.index()].on_cca_result(&mut ctx, busy);
                    }
                    Event::Fault { idx } => {
                        self.apply_fault(idx, sched);
                    }
                }
                if !self.world.notices.is_empty() {
                    self.drain_notices(sched);
                }
            }
        }

        let mut driver = Driver {
            world: &mut self.world,
            macs: &mut self.macs,
            uppers: &mut self.uppers,
            node_starts: &self.node_starts,
            record_learner: self.record_learner,
            faults: self.fault_plan.as_ref().map(|p| p.events()).unwrap_or(&[]),
            delivered: &mut self.delivered_scratch,
        };
        let sched = &mut self.sched;
        let batch = &mut self.batch_scratch;
        let scratch = &mut self.shard_scratch;
        let sharded = self.plan.shards() > 1 && self.split_ticks;
        let clamp_budget = self.past_clamp_budget;
        loop {
            // One load + compare per drained batch/event; with the
            // default unlimited budget the branch never takes.
            if sched.past_clamps() > clamp_budget {
                return Err(PastClampBudgetExceeded {
                    past_clamps: sched.past_clamps(),
                    budget: clamp_budget,
                    at: sched.now(),
                });
            }
            // Under a multi-shard plan, whole boundary buckets drain
            // in one scheduler call (when no heap event interleaves)
            // and large buckets fan their decisions out across cores;
            // single-shard runs keep the one-merged-head-inspection
            // loop of the sequential engine untouched. Identical
            // results either way — batching changes where events
            // wait, never what the simulation computes.
            if sharded && sched.drain_boundary_bucket(horizon, batch) > 0 {
                if batch.len() >= self.shard_batch_min {
                    driver.handle_subslot_batch(
                        batch,
                        sched,
                        &self.plan,
                        scratch,
                        self.shard_pool.as_mut(),
                    );
                } else {
                    for (t, ev) in batch.drain(..) {
                        driver.handle(t, ev, sched);
                    }
                }
                continue;
            }
            match sched.pop_at_or_before(horizon) {
                Some(entry) => driver.handle(entry.time, entry.event, sched),
                None => break,
            }
        }
        self.world.metrics.close(horizon);
        Ok(())
    }

    /// Runs for a duration from the current simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let horizon = self.sched.now() + d;
        self.run_until(horizon);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Total number of simulation events processed so far (the
    /// denominator of the events/sec macro-benchmark).
    pub fn events_processed(&self) -> u64 {
        self.sched.popped_total()
    }

    /// Past-time schedules clamped so far (clock-skew faults; see
    /// [`SimBuilder::past_clamp_budget`]).
    pub fn past_clamps(&self) -> u64 {
        self.sched.past_clamps()
    }

    /// The armed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&crate::faults::FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The metrics hub.
    pub fn metrics(&self) -> &MetricsHub {
        &self.world.metrics
    }

    /// Mutable metrics access (window resets).
    pub fn metrics_mut(&mut self) -> &mut MetricsHub {
        &mut self.world.metrics
    }

    /// Restarts the queue-level averaging of every node at the
    /// current time (to exclude a warmup phase from time-weighted
    /// queue metrics).
    pub fn reset_queue_accounting(&mut self) {
        let now = self.sched.now();
        for i in 0..self.world.nodes.len() {
            let level = self.world.nodes.queue[i].len();
            self.world
                .metrics
                .restart_queue_accounting(NodeId(i as u32), now, level);
        }
    }

    /// The world (tests, assertions).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The shard plan this simulation executes under (one shard for
    /// the sequential engine).
    pub fn shard_plan(&self) -> &qma_des::ShardPlan {
        &self.plan
    }

    /// Border classification of the spatially partitioned medium —
    /// `None` for single-shard runs.
    pub fn shard_partition(&self) -> Option<&qma_phy::MediumPartition> {
        self.partition.as_ref()
    }

    /// Whether the parallel boundary sweep is armed (multi-shard plan
    /// over an all-split-tick MAC population on the wheel scheduler).
    pub fn sharded_sweep_armed(&self) -> bool {
        self.plan.shards() > 1 && self.split_ticks
    }

    /// Energy report for a node up to the current time.
    pub fn energy_report(&mut self, node: NodeId) -> EnergyReport {
        let now = self.sched.now();
        self.world.energy_report(node, now)
    }

    /// A MAC's current policy snapshot (learning MACs only).
    pub fn policy_snapshot(&self, node: NodeId) -> Option<Vec<SlotAction>> {
        self.macs[node.index()].policy_snapshot()
    }

    /// A MAC's current learner sample (learning MACs only).
    pub fn learner_sample(&self, node: NodeId) -> Option<LearnerSample> {
        self.macs[node.index()].learner_sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Address;

    /// A MAC that transmits its queue head immediately on enqueue and
    /// delivers received frames upward. No ACKs, no backoff.
    struct NaiveMac;

    impl MacProtocol for NaiveMac {
        fn start(&mut self, _: &mut MacCtx<'_>) {}
        fn on_timer(&mut self, _: &mut MacCtx<'_>, _: MacTimerKind) {}
        fn on_frame(&mut self, ctx: &mut MacCtx<'_>, frame: &Frame) {
            if frame.dst.is_for(ctx.node) {
                ctx.deliver_to_upper(frame.clone());
            }
        }
        fn on_tx_end(&mut self, ctx: &mut MacCtx<'_>) {
            let frame = ctx.pop_queue().map(|q| q.frame);
            if let Some(f) = frame {
                ctx.notify_tx_result(f, TxResult::Delivered);
            }
            // Keep draining the queue back-to-back.
            if let Some(next) = ctx.queue().head().map(|q| q.frame.clone()) {
                ctx.start_tx(next);
            }
        }
        fn on_cca_result(&mut self, _: &mut MacCtx<'_>, _: bool) {}
        fn on_enqueue(&mut self, ctx: &mut MacCtx<'_>) {
            if !ctx.transmitting() {
                let f = ctx.queue().head().expect("just enqueued").frame.clone();
                ctx.start_tx(f);
            }
        }
    }

    /// Upper layer that sends `count` frames to node 1 at start and
    /// counts deliveries.
    struct Sender {
        count: u32,
    }

    impl UpperLayer for Sender {
        fn start(&mut self, ctx: &mut UpperCtx<'_>) {
            if ctx.node == NodeId(0) {
                for s in 0..self.count {
                    let f = Frame::data(ctx.node, Address::Node(NodeId(1)), s, 20, false);
                    ctx.enqueue_mac(f);
                }
            }
        }
        fn on_timer(&mut self, _: &mut UpperCtx<'_>, _: u64) {}
        fn on_deliver(&mut self, ctx: &mut UpperCtx<'_>, _: &Frame) {
            ctx.metrics().count("received", 1.0);
        }
        fn on_tx_result(&mut self, _: &mut UpperCtx<'_>, _: &Frame, _: TxResult) {}
    }

    fn two_node_sim(count: u32) -> Sim<Box<NaiveMac>, Box<Sender>> {
        SimBuilder::new(Connectivity::full(2), 7)
            .clock(FrameClock::all_cap(10, 1_000))
            .mac_factory(|_, _| Box::new(NaiveMac))
            .upper_factory(move |_, _| Box::new(Sender { count }))
            .build()
    }

    #[test]
    fn frames_flow_end_to_end() {
        let mut sim = two_node_sim(3);
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.metrics().get("received"), 3.0);
        assert_eq!(sim.metrics().mac(NodeId(0)).tx_attempts, 3);
        assert_eq!(sim.metrics().mac(NodeId(0)).tx_delivered, 3);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let mut a = two_node_sim(5);
        let mut b = two_node_sim(5);
        a.run_for(SimDuration::from_secs(2));
        b.run_for(SimDuration::from_secs(2));
        assert_eq!(a.metrics().get("received"), b.metrics().get("received"));
        assert_eq!(
            a.metrics().mac(NodeId(0)).tx_attempts,
            b.metrics().mac(NodeId(0)).tx_attempts
        );
    }

    #[test]
    fn delayed_node_start() {
        struct StartProbe;
        impl UpperLayer for StartProbe {
            fn start(&mut self, ctx: &mut UpperCtx<'_>) {
                let t = ctx.now().as_secs_f64();
                let node = ctx.node;
                ctx.metrics().count_node("started_at", node, t);
            }
            fn on_timer(&mut self, _: &mut UpperCtx<'_>, _: u64) {}
            fn on_deliver(&mut self, _: &mut UpperCtx<'_>, _: &Frame) {}
            fn on_tx_result(&mut self, _: &mut UpperCtx<'_>, _: &Frame, _: TxResult) {}
        }
        let mut sim = SimBuilder::new(Connectivity::full(2), 1)
            .clock(FrameClock::all_cap(10, 1_000))
            .mac_factory(|_, _| Box::new(NaiveMac))
            .upper_factory(|_, _| Box::new(StartProbe))
            .node_start(NodeId(1), SimTime::from_secs(5))
            .build();
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(sim.metrics().get_node("started_at", NodeId(0)), 0.0);
        assert_eq!(sim.metrics().get_node("started_at", NodeId(1)), 5.0);
    }

    #[test]
    fn queue_levels_recorded() {
        let mut sim = two_node_sim(4);
        sim.run_for(SimDuration::from_secs(1));
        // Queue rose to 4 then drained; average must be positive but
        // far below capacity.
        let avg = sim.metrics().avg_queue_level(NodeId(0));
        assert!(avg > 0.0 && avg < 1.0, "avg {avg}");
    }

    #[test]
    fn energy_reports_accumulate_tx_time() {
        let mut sim = two_node_sim(5);
        sim.run_for(SimDuration::from_secs(1));
        let r0 = sim.energy_report(NodeId(0));
        assert_eq!(r0.tx_attempts, 5);
        assert!(r0.transmit_us > 0);
        let r1 = sim.energy_report(NodeId(1));
        assert_eq!(r1.tx_attempts, 0);
        assert_eq!(r1.transmit_us, 0);
    }

    #[test]
    fn neighbor_queue_piggyback() {
        // After node 0 transmits with a backlog, node 1 must know it.
        struct Probe;
        impl UpperLayer for Probe {
            fn start(&mut self, ctx: &mut UpperCtx<'_>) {
                if ctx.node == NodeId(0) {
                    for s in 0..4 {
                        let f = Frame::data(ctx.node, Address::Node(NodeId(1)), s, 20, false);
                        ctx.enqueue_mac(f);
                    }
                }
            }
            fn on_timer(&mut self, _: &mut UpperCtx<'_>, _: u64) {}
            fn on_deliver(&mut self, _: &mut UpperCtx<'_>, _: &Frame) {}
            fn on_tx_result(&mut self, _: &mut UpperCtx<'_>, _: &Frame, _: TxResult) {}
        }
        let mut sim = SimBuilder::new(Connectivity::full(2), 3)
            .clock(FrameClock::all_cap(10, 1_000))
            .mac_factory(|_, _| Box::new(NaiveMac))
            .upper_factory(|_, _| Box::new(Probe))
            .build();
        sim.run_for(SimDuration::from_millis(3));
        // Node 1 heard at least the first frame, which carried
        // node 0's then-current queue level (3 remaining).
        // queue_diff at node 1: local 0 − neighbour 3-ish < 0.
        // (Direct access via world for the assertion.)
        let level = sim
            .world()
            .neighbor_level(NodeId(1), NodeId(0))
            .map(|(v, _)| v);
        assert!(level.is_some(), "piggyback missing");
        assert!(level.unwrap() >= 1);
    }

    #[test]
    fn crash_wipes_queue_and_reboot_restarts() {
        use crate::faults::FaultPlan;
        let mut sim = SimBuilder::new(Connectivity::full(2), 7)
            .clock(FrameClock::all_cap(10, 1_000))
            .mac_factory(|_, _| Box::new(NaiveMac))
            .upper_factory(move |_, _| Box::new(Sender { count: 5 }))
            .fault_plan(FaultPlan::new().crash_reboot(
                0,
                SimTime::from_millis(1),
                SimDuration::from_millis(9),
                true,
            ))
            .build();
        sim.run_for(SimDuration::from_millis(100));
        assert_eq!(sim.metrics().get("fault_crashes"), 1.0);
        assert_eq!(sim.metrics().get("fault_reboots"), 1.0);
        // The crash caught node 0 with a backlog: those frames are
        // fault losses, not MAC drops.
        assert!(sim.metrics().get("fault_frames_lost") >= 1.0);
        assert_eq!(sim.world().queue(NodeId(0)).drops(), 0);
        // The reboot re-ran the upper's start, so a fresh batch of 5
        // flowed end-to-end after the outage.
        assert!(sim.metrics().get("received") >= 5.0);
        assert!(sim.world().is_enabled(NodeId(0)));
    }

    #[test]
    fn crash_of_transmitter_mid_air_aborts_cleanly() {
        use crate::faults::FaultPlan;
        // 20-octet frame airtime is ~1 ms; crash node 0 at 200 µs —
        // mid-flight. The stale TxEnd must be swallowed by the tx
        // generation gate, the medium's energy reconciled.
        let mut sim = SimBuilder::new(Connectivity::full(2), 7)
            .clock(FrameClock::all_cap(10, 1_000))
            .mac_factory(|_, _| Box::new(NaiveMac))
            .upper_factory(move |_, _| Box::new(Sender { count: 1 }))
            .fault_plan(FaultPlan::new().push(
                SimTime::from_micros(200),
                crate::faults::FaultKind::Crash { node: 0 },
            ))
            .build();
        sim.run_for(SimDuration::from_millis(50));
        assert_eq!(sim.metrics().get("received"), 0.0);
        assert!(!sim.world().is_enabled(NodeId(0)));
        assert!(!sim.world().medium().is_busy(qma_phy::PhyNodeId(1)));
        assert_eq!(sim.world().medium().active_count(), 0);
    }

    #[test]
    fn jammed_receiver_gets_nothing() {
        use crate::faults::FaultPlan;
        let mut sim = SimBuilder::new(Connectivity::full(2), 7)
            .clock(FrameClock::all_cap(10, 1_000))
            .mac_factory(|_, _| Box::new(NaiveMac))
            .upper_factory(move |_, _| Box::new(Sender { count: 3 }))
            .fault_plan(FaultPlan::new().jam(vec![1], SimTime::ZERO, SimDuration::from_secs(1)))
            .build();
        sim.run_for(SimDuration::from_millis(500));
        assert_eq!(sim.metrics().get("fault_jam_bursts"), 1.0);
        assert_eq!(sim.metrics().get("received"), 0.0, "jam must block rx");
        assert!(sim.world().medium().is_jammed(qma_phy::PhyNodeId(1)));
    }

    /// A MAC that re-arms a 1 ms timer forever — the victim for the
    /// clock-skew / past-clamp budget tests.
    struct TickerMac;
    impl MacProtocol for TickerMac {
        fn start(&mut self, ctx: &mut MacCtx<'_>) {
            ctx.set_timer(MacTimerKind::Backoff, SimDuration::from_millis(1));
        }
        fn on_timer(&mut self, ctx: &mut MacCtx<'_>, _: MacTimerKind) {
            ctx.set_timer(MacTimerKind::Backoff, SimDuration::from_millis(1));
        }
        fn on_frame(&mut self, _: &mut MacCtx<'_>, _: &Frame) {}
        fn on_tx_end(&mut self, _: &mut MacCtx<'_>) {}
        fn on_cca_result(&mut self, _: &mut MacCtx<'_>, _: bool) {}
        fn on_enqueue(&mut self, _: &mut MacCtx<'_>) {}
    }

    #[test]
    fn negative_skew_trips_past_clamp_budget() {
        use crate::faults::FaultPlan;
        // A −10 ms skew on a 1 ms re-arm pushes every expiry into the
        // past: simulated time stops advancing and clamps pile up.
        // The budget aborts the run instead of looping forever.
        let mut sim = SimBuilder::new(Connectivity::full(2), 7)
            .clock(FrameClock::all_cap(10, 1_000))
            .mac_factory(|_, _| Box::new(TickerMac))
            .fault_plan(FaultPlan::new().clock_skew(vec![0], SimTime::from_millis(5), -10_000))
            .past_clamp_budget(50)
            .build();
        let err = sim
            .try_run_until(SimTime::from_millis(100))
            .expect_err("budget must trip");
        assert!(err.past_clamps > 50);
        assert_eq!(err.budget, 50);
        assert!(err.to_string().contains("past-clamp budget exceeded"));
    }

    #[test]
    fn positive_skew_only_delays_timers() {
        use crate::faults::FaultPlan;
        let mut sim = SimBuilder::new(Connectivity::full(2), 7)
            .clock(FrameClock::all_cap(10, 1_000))
            .mac_factory(|_, _| Box::new(TickerMac))
            .fault_plan(FaultPlan::new().clock_skew(vec![0], SimTime::from_millis(5), 2_500))
            .past_clamp_budget(0)
            .build();
        sim.try_run_until(SimTime::from_millis(100))
            .expect("positive skew never clamps");
        assert_eq!(sim.past_clamps(), 0);
    }

    #[test]
    fn armed_empty_plan_changes_nothing() {
        use crate::faults::FaultPlan;
        let mut plain = two_node_sim(5);
        let mut armed = SimBuilder::new(Connectivity::full(2), 7)
            .clock(FrameClock::all_cap(10, 1_000))
            .mac_factory(|_, _| Box::new(NaiveMac))
            .upper_factory(move |_, _| Box::new(Sender { count: 5 }))
            .fault_plan(FaultPlan::new())
            .build();
        plain.run_for(SimDuration::from_secs(2));
        armed.run_for(SimDuration::from_secs(2));
        assert_eq!(
            plain.metrics().get("received"),
            armed.metrics().get("received")
        );
        assert_eq!(plain.events_processed(), armed.events_processed());
    }

    #[test]
    fn active_set_tracks_bits_and_iterates() {
        let mut s = ActiveSet::new(200);
        assert_eq!(s.count(), 0);
        for i in [0usize, 63, 64, 130, 199] {
            s.set(i, true);
        }
        s.set(64, true); // idempotent
        assert_eq!(s.count(), 5);
        assert!(s.get(63) && s.get(64) && !s.get(65));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 130, 199]);
        s.set(63, false);
        s.set(63, false); // idempotent
        assert_eq!(s.count(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 130, 199]);
    }
}
