//! The bounded MAC transmit queue.
//!
//! The paper's evaluation uses "the maximum queue size of 8 packets";
//! under overload "most packets are lost due to queue drops as
//! packets cannot be transmitted fast enough" (§6.1.1) — so drop
//! accounting matters as much as the queue itself.

use std::collections::VecDeque;

use qma_des::SimTime;

use crate::frame::Frame;

/// An entry waiting for transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedFrame {
    /// The frame to transmit.
    pub frame: Frame,
    /// When it entered the queue (MAC delay accounting).
    pub enqueued_at: SimTime,
    /// Retransmissions already attempted.
    pub retries: u8,
}

/// Bounded FIFO transmit queue with drop counting.
///
/// # Examples
///
/// ```
/// use qma_netsim::{Frame, NodeId, TxQueue};
/// use qma_des::SimTime;
///
/// let mut q = TxQueue::new(2);
/// let f = Frame::data(NodeId(0), NodeId(1).into(), 0, 10, true);
/// assert!(q.push(f.clone(), SimTime::ZERO));
/// assert!(q.push(f.clone(), SimTime::ZERO));
/// assert!(!q.push(f, SimTime::ZERO)); // full → dropped
/// assert_eq!(q.drops(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TxQueue {
    items: VecDeque<QueuedFrame>,
    capacity: usize,
    drops: u64,
    enqueued_total: u64,
}

impl TxQueue {
    /// Creates a queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        TxQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            drops: 0,
            enqueued_total: 0,
        }
    }

    /// Appends a frame; returns `false` (and counts a drop) when the
    /// queue is full.
    pub fn push(&mut self, frame: Frame, now: SimTime) -> bool {
        if self.items.len() >= self.capacity {
            self.drops += 1;
            return false;
        }
        self.enqueued_total += 1;
        self.items.push_back(QueuedFrame {
            frame,
            enqueued_at: now,
            retries: 0,
        });
        true
    }

    /// The head-of-line entry, if any.
    pub fn head(&self) -> Option<&QueuedFrame> {
        self.items.front()
    }

    /// Mutable head-of-line entry (retry bookkeeping).
    pub fn head_mut(&mut self) -> Option<&mut QueuedFrame> {
        self.items.front_mut()
    }

    /// Removes and returns the head entry.
    pub fn pop(&mut self) -> Option<QueuedFrame> {
        self.items.pop_front()
    }

    /// Number of queued frames.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames rejected because the queue was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Frames accepted so far.
    pub fn enqueued_total(&self) -> u64 {
        self.enqueued_total
    }

    /// The queue level as piggybacked in frames (saturating u8).
    pub fn level_u8(&self) -> u8 {
        self.items.len().min(u8::MAX as usize) as u8
    }

    /// Iterates over queued entries, head first.
    pub fn iter(&self) -> impl Iterator<Item = &QueuedFrame> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::NodeId;

    fn frame(seq: u32) -> Frame {
        Frame::data(NodeId(0), NodeId(1).into(), seq, 10, true)
    }

    #[test]
    fn fifo_order() {
        let mut q = TxQueue::new(8);
        for s in 0..3 {
            assert!(q.push(frame(s), SimTime::from_secs(s as u64)));
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().frame.seq, 0);
        assert_eq!(q.pop().unwrap().frame.seq, 1);
        assert_eq!(q.pop().unwrap().frame.seq, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn capacity_enforced_with_drop_count() {
        let mut q = TxQueue::new(8);
        for s in 0..8 {
            assert!(q.push(frame(s), SimTime::ZERO));
        }
        for s in 8..11 {
            assert!(!q.push(frame(s), SimTime::ZERO));
        }
        assert_eq!(q.len(), 8);
        assert_eq!(q.drops(), 3);
        assert_eq!(q.enqueued_total(), 8);
    }

    #[test]
    fn head_and_retries() {
        let mut q = TxQueue::new(2);
        q.push(frame(0), SimTime::from_millis(5));
        assert_eq!(q.head().unwrap().retries, 0);
        q.head_mut().unwrap().retries += 1;
        assert_eq!(q.head().unwrap().retries, 1);
        assert_eq!(q.head().unwrap().enqueued_at, SimTime::from_millis(5));
    }

    #[test]
    fn level_saturates() {
        let mut q = TxQueue::new(300);
        for s in 0..300 {
            q.push(frame(s), SimTime::ZERO);
        }
        assert_eq!(q.level_u8(), 255);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TxQueue::new(0);
    }

    #[test]
    fn iter_in_order() {
        let mut q = TxQueue::new(4);
        for s in 0..4 {
            q.push(frame(s), SimTime::ZERO);
        }
        let seqs: Vec<u32> = q.iter().map(|e| e.frame.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }
}
