//! MAC frames.

use qma_des::SimTime;

use crate::world::NodeId;

/// Frame destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Address {
    /// A single node.
    Node(NodeId),
    /// All nodes in range.
    Broadcast,
}

impl Address {
    /// Is a frame with this address meant for `node`?
    pub fn is_for(self, node: NodeId) -> bool {
        match self {
            Address::Node(n) => n == node,
            Address::Broadcast => true,
        }
    }

    /// Returns `true` for broadcast addresses.
    pub fn is_broadcast(self) -> bool {
        matches!(self, Address::Broadcast)
    }
}

impl From<NodeId> for Address {
    fn from(n: NodeId) -> Self {
        Address::Node(n)
    }
}

/// Frame type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Application data.
    Data,
    /// Immediate acknowledgement.
    Ack,
    /// Periodic network beacon (DSME beacon slot / GPSR hello).
    Beacon,
    /// Management traffic (e.g. the DSME GTS 3-way handshake); the
    /// discriminator is protocol-defined.
    Management(u8),
}

impl FrameKind {
    /// Does this frame count as "DATA or ACK" for QMA's overhearing
    /// reward (Eq. 6)? The paper rewards observing *any* decodable
    /// traffic; beacons and management frames are MAC-level data.
    pub fn rewards_overhearing(self) -> bool {
        true
    }
}

/// Protocol-defined payload carried inside a frame.
///
/// Upper layers pack their fields into up to four 64-bit words —
/// a compact stand-in for real octet serialisation that keeps the
/// simulator layering clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Payload {
    /// No payload beyond headers.
    #[default]
    None,
    /// Four words of protocol data.
    Words([u64; 4]),
}

/// Provenance of an application packet, for end-to-end accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppInfo {
    /// The node that generated the packet.
    pub origin: NodeId,
    /// Unique id within the origin.
    pub id: u64,
    /// Generation time (end-to-end delay = delivery − creation).
    pub created_at: SimTime,
    /// Hops traversed so far.
    pub hops: u8,
}

/// A MAC frame.
///
/// `psdu_octets` drives airtime; we account 11 octets of MAC header +
/// FCS for data-ish frames (the IEEE 802.15.4 minimum with short
/// addressing) plus the declared payload size.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Transmitting node.
    pub src: NodeId,
    /// Destination.
    pub dst: Address,
    /// Frame type.
    pub kind: FrameKind,
    /// Per-source sequence number (ACK matching).
    pub seq: u32,
    /// PSDU size in octets (total MAC frame length).
    pub psdu_octets: u16,
    /// Whether the receiver must acknowledge.
    pub ack_request: bool,
    /// The sender's queue level at transmission time — the piggyback
    /// QMA's parameter-based exploration reads (§4.2).
    pub queue_level: u8,
    /// End-to-end provenance for application data.
    pub app: Option<AppInfo>,
    /// Protocol payload.
    pub payload: Payload,
}

/// MAC header + FCS octets accounted on top of payloads.
pub const MAC_OVERHEAD_OCTETS: u16 = 11;

impl Frame {
    /// Builds a unicast/broadcast data frame carrying `payload_octets`
    /// of application payload.
    pub fn data(
        src: NodeId,
        dst: Address,
        seq: u32,
        payload_octets: u16,
        ack_request: bool,
    ) -> Frame {
        Frame {
            src,
            dst,
            kind: FrameKind::Data,
            seq,
            psdu_octets: (MAC_OVERHEAD_OCTETS + payload_octets).min(127),
            ack_request,
            queue_level: 0,
            app: None,
            payload: Payload::None,
        }
    }

    /// Builds the immediate ACK for a received frame.
    pub fn ack_for(received: &Frame, me: NodeId) -> Frame {
        Frame {
            src: me,
            dst: Address::Node(received.src),
            kind: FrameKind::Ack,
            seq: received.seq,
            psdu_octets: 5,
            ack_request: false,
            queue_level: 0,
            app: None,
            payload: Payload::None,
        }
    }

    /// Builds a management frame (GTS handshake, route control, …).
    pub fn management(
        src: NodeId,
        dst: Address,
        discriminator: u8,
        seq: u32,
        payload_octets: u16,
        ack_request: bool,
    ) -> Frame {
        Frame {
            src,
            dst,
            kind: FrameKind::Management(discriminator),
            seq,
            psdu_octets: (MAC_OVERHEAD_OCTETS + payload_octets).min(127),
            ack_request,
            queue_level: 0,
            app: None,
            payload: Payload::None,
        }
    }

    /// Builds a broadcast beacon frame.
    pub fn beacon(src: NodeId, seq: u32, payload_octets: u16) -> Frame {
        Frame {
            src,
            dst: Address::Broadcast,
            kind: FrameKind::Beacon,
            seq,
            psdu_octets: (MAC_OVERHEAD_OCTETS + payload_octets).min(127),
            ack_request: false,
            queue_level: 0,
            app: None,
            payload: Payload::None,
        }
    }

    /// Attaches application provenance (builder style).
    pub fn with_app(mut self, app: AppInfo) -> Frame {
        self.app = Some(app);
        self
    }

    /// Attaches a payload (builder style).
    pub fn with_payload(mut self, payload: Payload) -> Frame {
        self.payload = payload;
        self
    }

    /// Is this an acknowledgement matching `seq` sent to `me`?
    pub fn acks(&self, seq: u32, me: NodeId) -> bool {
        self.kind == FrameKind::Ack && self.seq == seq && self.dst.is_for(me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_matching() {
        let a = Address::Node(NodeId(3));
        assert!(a.is_for(NodeId(3)));
        assert!(!a.is_for(NodeId(4)));
        assert!(Address::Broadcast.is_for(NodeId(9)));
        assert!(Address::Broadcast.is_broadcast());
        assert!(!a.is_broadcast());
        assert_eq!(Address::from(NodeId(1)), Address::Node(NodeId(1)));
    }

    #[test]
    fn data_frame_sizes() {
        let f = Frame::data(NodeId(0), Address::Broadcast, 7, 60, false);
        assert_eq!(f.psdu_octets, 71);
        // Clamped to the PHY maximum.
        let big = Frame::data(NodeId(0), Address::Broadcast, 7, 200, false);
        assert_eq!(big.psdu_octets, 127);
    }

    #[test]
    fn ack_matches_only_its_seq_and_destination() {
        let data = Frame::data(NodeId(1), NodeId(2).into(), 42, 10, true);
        let ack = Frame::ack_for(&data, NodeId(2));
        assert_eq!(ack.kind, FrameKind::Ack);
        assert_eq!(ack.psdu_octets, 5);
        assert!(ack.acks(42, NodeId(1)));
        assert!(!ack.acks(41, NodeId(1)));
        assert!(!ack.acks(42, NodeId(3)));
    }

    #[test]
    fn builders_attach_metadata() {
        let app = AppInfo {
            origin: NodeId(5),
            id: 99,
            created_at: SimTime::from_secs(1),
            hops: 2,
        };
        let f = Frame::data(NodeId(5), NodeId(0).into(), 1, 10, true)
            .with_app(app)
            .with_payload(Payload::Words([1, 2, 3, 4]));
        assert_eq!(f.app.unwrap().id, 99);
        assert_eq!(f.payload, Payload::Words([1, 2, 3, 4]));
    }

    #[test]
    fn management_and_beacon_kinds() {
        let m = Frame::management(NodeId(1), Address::Broadcast, 3, 1, 8, false);
        assert_eq!(m.kind, FrameKind::Management(3));
        let b = Frame::beacon(NodeId(1), 2, 4);
        assert_eq!(b.kind, FrameKind::Beacon);
        assert!(b.dst.is_broadcast());
        assert!(m.kind.rewards_overhearing());
    }
}
