//! Radio power units.

use std::fmt;
use std::ops::{Add, Sub};

/// A power level in dBm (decibels relative to one milliwatt).
///
/// # Examples
///
/// ```
/// use qma_phy::{Dbm, MilliWatts};
///
/// let p = Dbm::new(0.0);
/// assert!((p.to_milliwatts().value() - 1.0).abs() < 1e-12);
/// assert_eq!(Dbm::new(3.0) - Dbm::new(-9.0), 12.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Dbm(f64);

impl Dbm {
    /// Creates a power level.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "dBm value must not be NaN");
        Dbm(value)
    }

    /// The raw dBm value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to linear milliwatts.
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts(10f64.powf(self.0 / 10.0))
    }
}

/// A linear power in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct MilliWatts(f64);

impl MilliWatts {
    /// Creates a linear power value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or NaN.
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0, "power must be non-negative");
        MilliWatts(value)
    }

    /// The raw milliwatt value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to dBm. Zero power maps to −∞ dBm.
    pub fn to_dbm(self) -> Dbm {
        Dbm(10.0 * self.0.log10())
    }
}

impl Add<f64> for Dbm {
    type Output = Dbm;
    /// Adds a gain/loss in dB.
    fn add(self, db: f64) -> Dbm {
        Dbm(self.0 + db)
    }
}

impl Sub<f64> for Dbm {
    type Output = Dbm;
    /// Subtracts a loss in dB.
    fn sub(self, db: f64) -> Dbm {
        Dbm(self.0 - db)
    }
}

impl Sub for Dbm {
    type Output = f64;
    /// Difference of two levels, in dB.
    fn sub(self, rhs: Dbm) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

impl fmt::Display for MilliWatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} mW", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_milliwatt_roundtrip() {
        for v in [-90.0, -72.0, -9.0, 0.0, 3.0, 20.0] {
            let d = Dbm::new(v);
            let back = d.to_milliwatts().to_dbm();
            assert!((back.value() - v).abs() < 1e-9, "{v}");
        }
    }

    #[test]
    fn reference_points() {
        assert!((Dbm::new(0.0).to_milliwatts().value() - 1.0).abs() < 1e-12);
        assert!((Dbm::new(10.0).to_milliwatts().value() - 10.0).abs() < 1e-12);
        assert!((Dbm::new(-30.0).to_milliwatts().value() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn gain_arithmetic() {
        let p = Dbm::new(-9.0) + 6.0;
        assert_eq!(p.value(), -3.0);
        let q = p - 10.0;
        assert_eq!(q.value(), -13.0);
    }

    #[test]
    fn zero_power_is_negative_infinity_dbm() {
        assert_eq!(MilliWatts::new(0.0).to_dbm().value(), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_rejected() {
        let _ = MilliWatts::new(-1.0);
    }

    #[test]
    fn display() {
        assert_eq!(Dbm::new(-72.0).to_string(), "-72.0 dBm");
        assert_eq!(MilliWatts::new(1.0).to_string(), "1.0000 mW");
    }
}
