//! Wireless PHY substrate for the QMA reproduction.
//!
//! The paper evaluates QMA on IEEE 802.15.4 radios — simulated ones in
//! OMNeT++ (§6.1, §6.3) and real AT86RF231-class transceivers on FIT
//! IoT-LAB M3 nodes (§6.2). This crate provides the radio model that
//! substitutes for both:
//!
//! * [`units`] — dBm/mW power arithmetic,
//! * [`geo`] — 2-D positions and distances,
//! * [`pathloss`] — free-space and log-distance propagation, and the
//!   tx-power/sensitivity → communication-range computation used to
//!   reconstruct the testbed topologies (−9 dBm/−72 dBm for the tree,
//!   3 dBm/−90 dBm for the star),
//! * [`timing`] — O-QPSK 2.4 GHz symbol timing: frame airtime, CCA
//!   window, turnaround, ACK timing,
//! * [`medium`] — the half-duplex shared medium with binary
//!   interference (the "protocol model"): a frame is received cleanly
//!   iff it is the only audible transmission for its whole airtime and
//!   the receiver never transmits meanwhile. This reproduces the
//!   hidden-node structure of Fig. 6 exactly: a CCA at node A fails
//!   only while node B (the only node audible to A) is sending.
//! * [`energy`] — per-state energy integration plus attempt counters,
//!   backing the paper's "QMA and CSMA/CA consume the same amount of
//!   energy" observation (§6.2.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod geo;
pub mod medium;
pub mod partition;
pub mod pathloss;
pub mod timing;
pub mod units;

pub use energy::{EnergyMeter, EnergyReport, PowerProfile, RadioActivity};
pub use geo::Position;
pub use medium::{Connectivity, Medium, PhyNodeId, TxToken};
pub use partition::{MediumPartition, PartitionStats};
pub use pathloss::PathLoss;
pub use timing::{FrameTiming, PhyTiming};
pub use units::{Dbm, MilliWatts};
