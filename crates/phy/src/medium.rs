//! The shared wireless medium with binary interference.
//!
//! This implements the *protocol model*: every node pair is either
//! audible or not (derived from a path-loss model or given
//! explicitly), a receiver locks onto the first frame that arrives
//! while it senses no other energy, and a locked frame is corrupted
//! if any other audible transmission — or a local transmission —
//! overlaps any part of its airtime. Clear-channel assessment reports
//! busy iff any audible energy is present.
//!
//! This is exactly the structure the paper's hidden-node analysis
//! relies on (§6.1): with A–B–C in a line and A, C mutually inaudible,
//! "a CCA at node A or C only fails if node B is currently sending an
//! ACK", while simultaneous data frames from A and C collide at B.
//!
//! The medium is pure bookkeeping: callers (the network simulator)
//! drive it with `start_tx` / `end_tx` calls at the appropriate
//! simulated times and deliver frames to MAC layers themselves.

use crate::geo::Position;
use crate::pathloss::PathLoss;
use crate::units::Dbm;
use std::collections::HashSet;

/// Index of a node known to the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhyNodeId(pub u32);

impl PhyNodeId {
    /// The index as usize, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PhyNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle for an in-flight transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxToken(u64);

/// Who can hear whom.
///
/// Alongside the boolean adjacency matrix, a CSR (offset + flat
/// slice) listener table is precomputed at construction so the
/// per-transmission fan-out in [`Medium::start_tx_on`]/[`Medium::end_tx`]
/// is a slice walk instead of an n-wide filter scan — and needs no
/// per-call allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Connectivity {
    n: usize,
    /// Row-major n×n adjacency, diagonal false. **Empty when built
    /// sparsely**: the edge-list constructors
    /// ([`Connectivity::explicit`]/[`Connectivity::symmetric`]) skip
    /// the matrix above [`Connectivity::DENSE_LIMIT`] nodes and
    /// [`Connectivity::hears`] binary-searches the CSR row instead —
    /// a dense matrix at 50 000 nodes would be 2.5 GB. The
    /// position-derived constructors ([`Connectivity::from_pathloss`],
    /// [`Connectivity::full`]) are inherently O(n²) and keep the
    /// matrix at any size.
    audible: Vec<bool>,
    /// CSR row offsets: listeners of node `i` live at
    /// `flat[offsets[i]..offsets[i+1]]`.
    offsets: Vec<u32>,
    /// Flattened listener lists, ascending within each row.
    flat: Vec<PhyNodeId>,
}

impl Connectivity {
    /// Node count above which edge-list constructors skip the dense
    /// adjacency matrix and keep only the CSR table.
    pub const DENSE_LIMIT: usize = 2_048;

    /// Finishes construction from an adjacency matrix by building the
    /// CSR listener table.
    fn from_matrix(n: usize, audible: Vec<bool>) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut flat = Vec::new();
        offsets.push(0u32);
        for i in 0..n {
            for j in 0..n {
                if audible[i * n + j] {
                    flat.push(PhyNodeId(j as u32));
                }
            }
            offsets.push(flat.len() as u32);
        }
        Connectivity {
            n,
            audible,
            offsets,
            flat,
        }
    }

    /// Builds the CSR table straight from a directed edge list,
    /// without materialising the n² matrix. Used by the edge-list
    /// constructors above [`Connectivity::DENSE_LIMIT`] nodes.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range node indices or self-loops.
    fn from_edges_sparse(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut rows: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
        for &(i, j) in edges {
            assert!(
                (i as usize) < n && (j as usize) < n,
                "edge ({i},{j}) out of range (n={n})"
            );
            assert_ne!(i, j, "self-loop ({i},{i})");
            rows.push((i, j));
        }
        rows.sort_unstable();
        rows.dedup();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut flat = Vec::with_capacity(rows.len());
        offsets.push(0u32);
        let mut next_row = 0usize;
        for &(i, j) in &rows {
            while next_row < i as usize {
                offsets.push(flat.len() as u32);
                next_row += 1;
            }
            flat.push(PhyNodeId(j));
        }
        while next_row < n {
            offsets.push(flat.len() as u32);
            next_row += 1;
        }
        debug_assert_eq!(offsets.len(), n + 1);
        Connectivity {
            n,
            audible: Vec::new(),
            offsets,
            flat,
        }
    }
    /// Derives connectivity from positions and a path-loss model:
    /// `j` hears `i` iff the power received from `i` at `j`'s position
    /// is at least `sensitivity`.
    pub fn from_pathloss(
        positions: &[Position],
        model: &PathLoss,
        tx_power: Dbm,
        sensitivity: Dbm,
    ) -> Self {
        let n = positions.len();
        let mut audible = vec![false; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let d = positions[i].distance_to(positions[j]);
                    audible[i * n + j] = model.audible(tx_power, sensitivity, d);
                }
            }
        }
        Connectivity::from_matrix(n, audible)
    }

    /// Builds connectivity from an explicit edge list. Edges are
    /// directed `(transmitter, receiver)`; use [`Connectivity::symmetric`]
    /// for bidirectional links.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range node indices or self-loops.
    pub fn explicit(n: usize, edges: &[(u32, u32)]) -> Self {
        if n > Self::DENSE_LIMIT {
            return Connectivity::from_edges_sparse(n, edges);
        }
        let mut audible = vec![false; n * n];
        for &(i, j) in edges {
            let (i, j) = (i as usize, j as usize);
            assert!(i < n && j < n, "edge ({i},{j}) out of range (n={n})");
            assert_ne!(i, j, "self-loop ({i},{i})");
            audible[i * n + j] = true;
        }
        Connectivity::from_matrix(n, audible)
    }

    /// Builds symmetric connectivity from an undirected edge list.
    pub fn symmetric(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut both: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            both.push((a, b));
            both.push((b, a));
        }
        Connectivity::explicit(n, &both)
    }

    /// Fully connected topology on `n` nodes (single collision
    /// domain, e.g. the star testbed where "all nodes can hear each
    /// other").
    pub fn full(n: usize) -> Self {
        let mut audible = vec![true; n * n];
        for i in 0..n {
            audible[i * n + i] = false;
        }
        Connectivity::from_matrix(n, audible)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Can `rx` hear `tx`? O(1) on dense topologies, O(log degree) on
    /// sparse ones (CSR rows are sorted ascending).
    pub fn hears(&self, rx: PhyNodeId, tx: PhyNodeId) -> bool {
        if self.audible.is_empty() {
            return self.listeners(tx).binary_search(&rx).is_ok();
        }
        self.audible[tx.index() * self.n + rx.index()]
    }

    /// The nodes audible from `tx` (its interference set), ascending —
    /// a precomputed CSR row, so no work or allocation per call.
    pub fn listeners(&self, tx: PhyNodeId) -> &[PhyNodeId] {
        let i = tx.index();
        &self.flat[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterator over the nodes audible from `tx` (its interference
    /// set).
    pub fn listeners_of(&self, tx: PhyNodeId) -> impl Iterator<Item = PhyNodeId> + '_ {
        self.listeners(tx).iter().copied()
    }

    /// Neighbour count of `tx`.
    pub fn degree(&self, tx: PhyNodeId) -> usize {
        self.listeners(tx).len()
    }

    /// Returns `true` if the (i → j) and (j → i) links both exist.
    pub fn bidirectional(&self, a: PhyNodeId, b: PhyNodeId) -> bool {
        self.hears(a, b) && self.hears(b, a)
    }
}

#[derive(Debug, Clone)]
struct ActiveTx {
    token: TxToken,
    tx_node: PhyNodeId,
    channel: u8,
}

#[derive(Debug, Clone, Copy)]
struct RxLock {
    token: TxToken,
    clean: bool,
}

#[derive(Debug, Clone, Default)]
struct ReceiverState {
    /// Number of audible in-flight transmissions, per channel.
    energy: Vec<u32>,
    /// The frame this receiver is locked onto, if any.
    lock: Option<RxLock>,
    /// Is this node itself transmitting?
    transmitting: bool,
    /// The channel this node's receiver is tuned to.
    listen_channel: u8,
    /// Is this node inside an active jammer's footprint? A jammed
    /// receiver cannot lock onto new frames and its CCA always reads
    /// busy; a reception already in progress is corrupted.
    jammed: bool,
}

/// The shared medium.
///
/// # Examples
///
/// ```
/// use qma_phy::{Connectivity, Medium, PhyNodeId};
///
/// // A — B — C chain: the classic hidden-node topology.
/// let conn = Connectivity::symmetric(3, &[(0, 1), (1, 2)]);
/// let mut medium = Medium::new(conn);
/// let a = PhyNodeId(0);
/// let b = PhyNodeId(1);
/// let c = PhyNodeId(2);
///
/// // C cannot hear A's transmission, so its CCA stays idle...
/// let tx = medium.start_tx(a);
/// assert!(!medium.is_busy(c));
/// assert!(medium.is_busy(b));
/// // ...and B receives the frame cleanly.
/// assert_eq!(medium.end_tx(tx), vec![b]);
/// ```
#[derive(Debug, Clone)]
pub struct Medium {
    conn: Connectivity,
    receivers: Vec<ReceiverState>,
    active: Vec<ActiveTx>,
    channels: u8,
    next_token: u64,
    collisions: u64,
    clean_receptions: u64,
    /// Reusable buffer for [`Medium::end_tx`]'s delivered set, so the
    /// per-transmission hot path performs no allocation.
    delivered_scratch: Vec<PhyNodeId>,
    /// Directed links `(tx, rx)` currently degraded below the decoding
    /// threshold: the receiver still senses the energy (interference,
    /// CCA busy) but can no longer lock onto frames from that
    /// transmitter. Empty in the fault-free case, so the hot path pays
    /// one `is_empty` branch.
    degraded: HashSet<(u32, u32)>,
}

impl Medium {
    /// Creates a single-channel medium over the given connectivity.
    pub fn new(conn: Connectivity) -> Self {
        Self::with_channels(conn, 1)
    }

    /// Creates a medium with `channels` orthogonal frequency channels
    /// (IEEE 802.15.4 at 2.4 GHz offers 16; DSME spreads GTS over
    /// them). Transmissions interfere only within the same channel.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn with_channels(conn: Connectivity, channels: u8) -> Self {
        assert!(channels > 0, "need at least one channel");
        let n = conn.len();
        Medium {
            conn,
            receivers: vec![
                ReceiverState {
                    energy: vec![0; channels as usize],
                    lock: None,
                    transmitting: false,
                    listen_channel: 0,
                    jammed: false,
                };
                n
            ],
            active: Vec::new(),
            channels,
            next_token: 0,
            collisions: 0,
            clean_receptions: 0,
            delivered_scratch: Vec::new(),
            degraded: HashSet::new(),
        }
    }

    /// Number of orthogonal channels.
    pub fn channels(&self) -> u8 {
        self.channels
    }

    /// Retunes a node's receiver. Any reception in progress is lost.
    ///
    /// # Panics
    ///
    /// Panics if the channel is out of range.
    pub fn set_listen_channel(&mut self, node: PhyNodeId, channel: u8) {
        assert!(channel < self.channels, "channel {channel} out of range");
        let st = &mut self.receivers[node.index()];
        if st.listen_channel != channel {
            st.listen_channel = channel;
            st.lock = None;
        }
    }

    /// The channel a node's receiver is tuned to.
    pub fn listen_channel(&self, node: PhyNodeId) -> u8 {
        self.receivers[node.index()].listen_channel
    }

    /// The connectivity this medium was built with.
    pub fn connectivity(&self) -> &Connectivity {
        &self.conn
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.conn.len()
    }

    /// Returns `true` when the medium has no nodes.
    pub fn is_empty(&self) -> bool {
        self.conn.is_empty()
    }

    /// Begins a transmission from `tx_node` on channel 0. See
    /// [`Medium::start_tx_on`].
    pub fn start_tx(&mut self, tx_node: PhyNodeId) -> TxToken {
        self.start_tx_on(tx_node, 0)
    }

    /// Begins a transmission from `tx_node` on `channel`. The caller
    /// is responsible for calling [`Medium::end_tx`] with the
    /// returned token exactly when the frame's airtime elapses.
    ///
    /// Starting a transmission aborts any reception in progress at the
    /// transmitter (half-duplex).
    ///
    /// # Panics
    ///
    /// Panics if the node is already transmitting (MAC layers must
    /// serialise their own transmissions) or the channel is out of
    /// range.
    pub fn start_tx_on(&mut self, tx_node: PhyNodeId, channel: u8) -> TxToken {
        assert!(
            !self.receivers[tx_node.index()].transmitting,
            "{tx_node} started a second concurrent transmission"
        );
        assert!(channel < self.channels, "channel {channel} out of range");
        let token = TxToken(self.next_token);
        self.next_token += 1;

        // Half-duplex: the transmitter loses anything it was receiving.
        let me = &mut self.receivers[tx_node.index()];
        me.transmitting = true;
        if let Some(lock) = &mut me.lock {
            lock.clean = false;
        }

        let degraded_any = !self.degraded.is_empty();
        for &r in self.conn.listeners(tx_node) {
            let st = &mut self.receivers[r.index()];
            st.energy[channel as usize] += 1;
            if st.transmitting || st.listen_channel != channel {
                // A transmitting or differently-tuned node cannot
                // lock onto this frame.
                continue;
            }
            match &mut st.lock {
                Some(lock) => {
                    // Already locked onto another frame: that frame is
                    // now corrupted, and the new frame cannot be
                    // captured either (no capture effect).
                    lock.clean = false;
                }
                None => {
                    if st.energy[channel as usize] == 1
                        && !st.jammed
                        && !(degraded_any && self.degraded.contains(&(tx_node.0, r.0)))
                    {
                        st.lock = Some(RxLock { token, clean: true });
                    }
                    // energy > 1 without a lock: mid-air join, the new
                    // frame is not receivable. A jammed receiver or a
                    // degraded link senses the energy but cannot
                    // decode the frame.
                }
            }
        }

        self.active.push(ActiveTx {
            token,
            tx_node,
            channel,
        });
        token
    }

    /// Ends the transmission identified by `token`, releasing its
    /// energy at all listeners. Returns the nodes that received the
    /// frame cleanly (in ascending node order). The returned slice
    /// borrows a scratch buffer owned by the medium and is valid until
    /// the next `end_tx` call.
    ///
    /// # Panics
    ///
    /// Panics if the token is unknown (double `end_tx`).
    pub fn end_tx(&mut self, token: TxToken) -> &[PhyNodeId] {
        let idx = self
            .active
            .iter()
            .position(|a| a.token == token)
            .expect("end_tx with unknown token");
        let tx = self.active.swap_remove(idx);

        self.receivers[tx.tx_node.index()].transmitting = false;

        self.delivered_scratch.clear();
        for &r in self.conn.listeners(tx.tx_node) {
            let st = &mut self.receivers[r.index()];
            let energy = &mut st.energy[tx.channel as usize];
            debug_assert!(*energy > 0, "energy underflow at {r}");
            *energy -= 1;
            if let Some(lock) = st.lock {
                if lock.token == token {
                    st.lock = None;
                    if lock.clean && !st.transmitting && st.listen_channel == tx.channel {
                        self.delivered_scratch.push(r);
                        self.clean_receptions += 1;
                    } else {
                        self.collisions += 1;
                    }
                }
            }
        }
        // CSR rows are ascending, so the delivered set already is.
        debug_assert!(self.delivered_scratch.is_sorted());
        &self.delivered_scratch
    }

    /// Aborts the transmission identified by `token` without
    /// delivering it — the transmitter's radio died mid-frame. Energy
    /// is released at all listeners; any receiver locked onto the
    /// frame loses it and the truncated frame counts as a collision
    /// (a real radio sees a bad CRC, not silence).
    ///
    /// # Panics
    ///
    /// Panics if the token is unknown.
    pub fn abort_tx(&mut self, token: TxToken) {
        let idx = self
            .active
            .iter()
            .position(|a| a.token == token)
            .expect("abort_tx with unknown token");
        let tx = self.active.swap_remove(idx);

        self.receivers[tx.tx_node.index()].transmitting = false;
        for &r in self.conn.listeners(tx.tx_node) {
            let st = &mut self.receivers[r.index()];
            let energy = &mut st.energy[tx.channel as usize];
            debug_assert!(*energy > 0, "energy underflow at {r}");
            *energy -= 1;
            if let Some(lock) = st.lock {
                if lock.token == token {
                    st.lock = None;
                    self.collisions += 1;
                }
            }
        }
    }

    /// Drops any reception in progress at `node` — its radio was
    /// reset. Energy bookkeeping is untouched: the frame is still in
    /// the air, the node just stops decoding it.
    pub fn drop_rx_lock(&mut self, node: PhyNodeId) {
        self.receivers[node.index()].lock = None;
    }

    /// Places `node` inside (or removes it from) a jammer's
    /// footprint. While jammed, the node's CCA always reads busy and
    /// it cannot lock onto new frames; a reception already in progress
    /// is corrupted (the jammer tramples its tail). The node can still
    /// transmit — its frames are corrupted only at *jammed* receivers.
    pub fn set_jammed(&mut self, node: PhyNodeId, jammed: bool) {
        let st = &mut self.receivers[node.index()];
        st.jammed = jammed;
        if jammed {
            if let Some(lock) = &mut st.lock {
                lock.clean = false;
            }
        }
    }

    /// Is `node` currently inside a jammer's footprint?
    pub fn is_jammed(&self, node: PhyNodeId) -> bool {
        self.receivers[node.index()].jammed
    }

    /// Marks the directed link `tx → rx` as degraded below the
    /// decoding threshold (or restores it). A degraded link still
    /// carries energy — it interferes and trips CCA — but the
    /// receiver can no longer lock onto frames from `tx`; a reception
    /// from `tx` already in progress at `rx` is corrupted.
    pub fn set_link_degraded(&mut self, tx: PhyNodeId, rx: PhyNodeId, degraded: bool) {
        if degraded {
            self.degraded.insert((tx.0, rx.0));
            let locked_from_tx = match self.receivers[rx.index()].lock {
                Some(lock) => self
                    .active
                    .iter()
                    .any(|a| a.token == lock.token && a.tx_node == tx),
                None => false,
            };
            if locked_from_tx {
                if let Some(lock) = &mut self.receivers[rx.index()].lock {
                    lock.clean = false;
                }
            }
        } else {
            self.degraded.remove(&(tx.0, rx.0));
        }
    }

    /// Is the directed link `tx → rx` currently degraded?
    pub fn is_link_degraded(&self, tx: PhyNodeId, rx: PhyNodeId) -> bool {
        self.degraded.contains(&(tx.0, rx.0))
    }

    /// Clear-channel assessment at `node` on its listen channel:
    /// `true` iff any audible transmission is in flight there, a
    /// jammer covers the node, or the node itself is transmitting.
    pub fn is_busy(&self, node: PhyNodeId) -> bool {
        let st = &self.receivers[node.index()];
        st.jammed || st.energy[st.listen_channel as usize] > 0 || st.transmitting
    }

    /// Is this node currently transmitting?
    pub fn is_transmitting(&self, node: PhyNodeId) -> bool {
        self.receivers[node.index()].transmitting
    }

    /// Is this node currently locked onto an incoming frame?
    pub fn is_receiving(&self, node: PhyNodeId) -> bool {
        self.receivers[node.index()].lock.is_some()
    }

    /// Number of transmissions currently in flight.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Total corrupted receptions observed so far.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Total clean receptions observed so far.
    pub fn clean_receptions(&self) -> u64 {
        self.clean_receptions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hidden_node_medium() -> (Medium, PhyNodeId, PhyNodeId, PhyNodeId) {
        let conn = Connectivity::symmetric(3, &[(0, 1), (1, 2)]);
        (Medium::new(conn), PhyNodeId(0), PhyNodeId(1), PhyNodeId(2))
    }

    #[test]
    fn clean_reception_single_tx() {
        let (mut m, a, b, c) = hidden_node_medium();
        let t = m.start_tx(a);
        assert!(m.is_busy(b));
        assert!(!m.is_busy(c), "C must not hear A (hidden node)");
        assert_eq!(m.end_tx(t), vec![b]);
        assert!(!m.is_busy(b));
        assert_eq!(m.clean_receptions(), 1);
        assert_eq!(m.collisions(), 0);
    }

    #[test]
    fn hidden_node_collision_at_middle() {
        let (mut m, a, b, c) = hidden_node_medium();
        let ta = m.start_tx(a);
        let tc = m.start_tx(c);
        // B locked onto A's frame first; C's frame corrupts it.
        assert_eq!(m.end_tx(ta), vec![]);
        assert_eq!(m.end_tx(tc), vec![]);
        assert_eq!(m.clean_receptions(), 0);
        assert!(m.collisions() >= 1);
        assert!(!m.is_busy(b));
    }

    #[test]
    fn late_joiner_is_not_captured() {
        let (mut m, a, b, c) = hidden_node_medium();
        let ta = m.start_tx(a);
        let tc = m.start_tx(c);
        // A finishes; B still has energy from C but never locked onto
        // C's frame, so nothing is delivered at either end.
        assert_eq!(m.end_tx(ta), vec![]);
        assert!(m.is_busy(b), "C's frame still in the air");
        assert_eq!(m.end_tx(tc), vec![]);
    }

    #[test]
    fn half_duplex_transmitter_cannot_receive() {
        let (mut m, a, b, _c) = hidden_node_medium();
        let tb = m.start_tx(b);
        let ta = m.start_tx(a);
        // B is transmitting, so it never locks onto A's frame.
        assert_eq!(m.end_tx(ta), vec![]);
        // A (and C) receive B's frame cleanly? A locked onto B at
        // start_tx(b) — before A transmitted. A's own transmission
        // corrupts its reception (half-duplex).
        assert_eq!(m.end_tx(tb), vec![PhyNodeId(2)]);
    }

    #[test]
    fn reception_aborted_by_own_tx() {
        let (mut m, a, b, _c) = hidden_node_medium();
        let ta = m.start_tx(a); // B locks on
        assert!(m.is_receiving(b));
        let tb = m.start_tx(b); // B preempts its own reception
        assert_eq!(m.end_tx(ta), vec![], "B's rx must be aborted");
        // A hears B's frame, but A was transmitting when it started →
        // A never locked; C locked cleanly.
        assert_eq!(m.end_tx(tb), vec![PhyNodeId(2)]);
    }

    #[test]
    fn cca_busy_only_within_range() {
        let (mut m, a, _b, c) = hidden_node_medium();
        let t = m.start_tx(a);
        assert!(!m.is_busy(c));
        assert!(m.is_busy(PhyNodeId(1)));
        // The transmitter itself reports busy (it cannot CCA mid-tx).
        assert!(m.is_busy(a));
        m.end_tx(t);
    }

    #[test]
    fn energy_returns_to_zero_after_overlap() {
        let conn = Connectivity::full(4);
        let mut m = Medium::new(conn);
        let t0 = m.start_tx(PhyNodeId(0));
        let t1 = m.start_tx(PhyNodeId(1));
        let t2 = m.start_tx(PhyNodeId(2));
        m.end_tx(t0);
        m.end_tx(t1);
        m.end_tx(t2);
        for i in 0..4 {
            assert!(!m.is_busy(PhyNodeId(i)), "node {i} stuck busy");
        }
        assert_eq!(m.active_count(), 0);
    }

    #[test]
    fn full_topology_broadcast_reaches_all() {
        let mut m = Medium::new(Connectivity::full(5));
        let t = m.start_tx(PhyNodeId(2));
        let got = m.end_tx(t);
        assert_eq!(
            got,
            vec![PhyNodeId(0), PhyNodeId(1), PhyNodeId(3), PhyNodeId(4)]
        );
    }

    #[test]
    #[should_panic(expected = "second concurrent transmission")]
    fn double_tx_panics() {
        let (mut m, a, _, _) = hidden_node_medium();
        let _t1 = m.start_tx(a);
        let _t2 = m.start_tx(a);
    }

    #[test]
    #[should_panic(expected = "unknown token")]
    fn double_end_panics() {
        let (mut m, a, _, _) = hidden_node_medium();
        let t = m.start_tx(a);
        m.end_tx(t);
        m.end_tx(t);
    }

    #[test]
    fn explicit_asymmetric_links() {
        // 0 → 1 only: 1 hears 0 but not vice versa.
        let conn = Connectivity::explicit(2, &[(0, 1)]);
        assert!(conn.hears(PhyNodeId(1), PhyNodeId(0)));
        assert!(!conn.hears(PhyNodeId(0), PhyNodeId(1)));
        assert!(!conn.bidirectional(PhyNodeId(0), PhyNodeId(1)));
        let mut m = Medium::new(conn);
        let t = m.start_tx(PhyNodeId(1));
        assert_eq!(m.end_tx(t), vec![], "0 cannot hear 1");
    }

    #[test]
    fn connectivity_from_pathloss_matches_range() {
        use crate::geo::Position;
        use crate::units::Dbm;
        let model = PathLoss::indoor_2_4ghz();
        let tx = Dbm::new(-9.0);
        let sens = Dbm::new(-72.0);
        let range = model.max_range(tx, sens);
        let positions = [
            Position::new(0.0, 0.0),
            Position::new(range * 0.9, 0.0),
            Position::new(range * 1.8, 0.0),
        ];
        let conn = Connectivity::from_pathloss(&positions, &model, tx, sens);
        assert!(conn.bidirectional(PhyNodeId(0), PhyNodeId(1)));
        assert!(conn.bidirectional(PhyNodeId(1), PhyNodeId(2)));
        assert!(
            !conn.hears(PhyNodeId(2), PhyNodeId(0)),
            "0–2 must be hidden"
        );
        assert_eq!(conn.degree(PhyNodeId(1)), 2);
    }

    #[test]
    fn listeners_iterator() {
        let conn = Connectivity::symmetric(3, &[(0, 1), (1, 2)]);
        let l: Vec<_> = conn.listeners_of(PhyNodeId(1)).collect();
        assert_eq!(l, vec![PhyNodeId(0), PhyNodeId(2)]);
    }

    // ---- Multi-channel behaviour (DSME CFP) ----

    #[test]
    fn orthogonal_channels_do_not_interfere() {
        let mut m = Medium::with_channels(Connectivity::full(4), 4);
        m.set_listen_channel(PhyNodeId(1), 1);
        m.set_listen_channel(PhyNodeId(3), 2);
        let t0 = m.start_tx_on(PhyNodeId(0), 1); // for node 1
        let t2 = m.start_tx_on(PhyNodeId(2), 2); // for node 3
                                                 // Each receiver hears only its own channel.
        assert_eq!(m.end_tx(t0), vec![PhyNodeId(1)]);
        assert_eq!(m.end_tx(t2), vec![PhyNodeId(3)]);
    }

    #[test]
    fn same_channel_still_collides() {
        let mut m = Medium::with_channels(Connectivity::full(4), 4);
        m.set_listen_channel(PhyNodeId(1), 3);
        m.set_listen_channel(PhyNodeId(3), 3);
        let t0 = m.start_tx_on(PhyNodeId(0), 3);
        let t2 = m.start_tx_on(PhyNodeId(2), 3);
        assert_eq!(m.end_tx(t0), vec![]);
        assert_eq!(m.end_tx(t2), vec![]);
        assert!(m.collisions() >= 1);
    }

    #[test]
    fn cca_uses_listen_channel() {
        let mut m = Medium::with_channels(Connectivity::full(2), 2);
        let t = m.start_tx_on(PhyNodeId(0), 1);
        // Node 1 listens on channel 0: idle there.
        assert!(!m.is_busy(PhyNodeId(1)));
        m.set_listen_channel(PhyNodeId(1), 1);
        assert!(m.is_busy(PhyNodeId(1)));
        m.end_tx(t);
    }

    #[test]
    fn retuning_mid_reception_loses_frame() {
        let mut m = Medium::with_channels(Connectivity::full(2), 2);
        let t = m.start_tx_on(PhyNodeId(0), 0);
        assert!(m.is_receiving(PhyNodeId(1)));
        m.set_listen_channel(PhyNodeId(1), 1);
        assert!(!m.is_receiving(PhyNodeId(1)));
        assert_eq!(m.end_tx(t), vec![], "retuned receiver must lose the frame");
        // Energy bookkeeping stays consistent.
        m.set_listen_channel(PhyNodeId(1), 0);
        assert!(!m.is_busy(PhyNodeId(1)));
    }

    #[test]
    fn default_listen_channel_is_zero() {
        let m = Medium::with_channels(Connectivity::full(2), 16);
        assert_eq!(m.listen_channel(PhyNodeId(0)), 0);
        assert_eq!(m.channels(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn channel_out_of_range_panics() {
        let mut m = Medium::with_channels(Connectivity::full(2), 2);
        let _ = m.start_tx_on(PhyNodeId(0), 2);
    }

    // ---- Fault hooks (jam, drift, crash-abort) ----

    #[test]
    fn jammed_receiver_reads_busy_and_locks_nothing() {
        let (mut m, a, b, c) = hidden_node_medium();
        m.set_jammed(b, true);
        assert!(m.is_jammed(b));
        assert!(m.is_busy(b), "jammed CCA must read busy with no tx");
        assert!(!m.is_busy(c));
        let t = m.start_tx(a);
        assert!(!m.is_receiving(b), "jammed node must not lock");
        assert_eq!(m.end_tx(t), vec![], "no delivery into the jam");
        m.set_jammed(b, false);
        assert!(!m.is_busy(b), "energy consistent after jam");
        // After the jam lifts, reception works again.
        let t = m.start_tx(a);
        assert_eq!(m.end_tx(t), vec![b]);
    }

    #[test]
    fn jam_mid_flight_corrupts_reception() {
        let (mut m, a, b, _c) = hidden_node_medium();
        let t = m.start_tx(a);
        assert!(m.is_receiving(b));
        m.set_jammed(b, true);
        assert_eq!(m.end_tx(t), vec![], "jam must trample the tail");
        assert_eq!(m.collisions(), 1);
        m.set_jammed(b, false);
        assert!(!m.is_busy(b));
    }

    #[test]
    fn degraded_link_blocks_lock_but_still_interferes() {
        let (mut m, a, b, c) = hidden_node_medium();
        m.set_link_degraded(a, b, true);
        assert!(m.is_link_degraded(a, b));
        let ta = m.start_tx(a);
        assert!(!m.is_receiving(b), "degraded link must not lock");
        assert!(m.is_busy(b), "degraded energy still trips CCA");
        // C's frame arrives while A's (undecodable) energy is present:
        // mid-air join, so B cannot lock onto C either — the degraded
        // link still interferes.
        let tc = m.start_tx(c);
        assert!(!m.is_receiving(b));
        assert_eq!(m.end_tx(ta), vec![]);
        assert_eq!(m.end_tx(tc), vec![]);
        assert!(!m.is_busy(b), "energy consistent after degraded tx");
        // The reverse direction is unaffected.
        let tb = m.start_tx(b);
        assert_eq!(m.end_tx(tb), vec![a, c]);
        // Restoring the link restores reception.
        m.set_link_degraded(a, b, false);
        let ta = m.start_tx(a);
        assert_eq!(m.end_tx(ta), vec![b]);
    }

    #[test]
    fn drift_mid_flight_corrupts_reception() {
        let (mut m, a, b, _c) = hidden_node_medium();
        let t = m.start_tx(a);
        assert!(m.is_receiving(b));
        m.set_link_degraded(a, b, true);
        assert_eq!(m.end_tx(t), vec![], "drift must corrupt in-flight frame");
        assert_eq!(m.collisions(), 1);
        assert!(!m.is_busy(b));
    }

    #[test]
    fn abort_tx_releases_energy_and_counts_collision() {
        let (mut m, a, b, _c) = hidden_node_medium();
        let t = m.start_tx(a);
        assert!(m.is_receiving(b));
        m.abort_tx(t);
        assert_eq!(m.active_count(), 0);
        assert!(!m.is_busy(b), "aborted tx must release its energy");
        assert!(!m.is_receiving(b));
        assert_eq!(m.collisions(), 1, "truncated frame is a bad CRC");
        assert_eq!(m.clean_receptions(), 0);
        // The transmitter's radio is free again after reboot.
        let t = m.start_tx(a);
        assert_eq!(m.end_tx(t), vec![b]);
    }

    #[test]
    fn drop_rx_lock_loses_frame_keeps_energy() {
        let (mut m, a, b, _c) = hidden_node_medium();
        let t = m.start_tx(a);
        assert!(m.is_receiving(b));
        m.drop_rx_lock(b);
        assert!(!m.is_receiving(b));
        assert!(m.is_busy(b), "frame is still in the air");
        assert_eq!(m.end_tx(t), vec![], "reset radio must lose the frame");
        assert!(!m.is_busy(b));
    }

    #[test]
    #[should_panic(expected = "unknown token")]
    fn abort_then_end_panics() {
        let (mut m, a, _, _) = hidden_node_medium();
        let t = m.start_tx(a);
        m.abort_tx(t);
        m.end_tx(t);
    }
}
