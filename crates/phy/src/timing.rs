//! IEEE 802.15.4 O-QPSK (2.4 GHz, 250 kb/s) timing constants.
//!
//! All MAC and DSME durations in this workspace derive from the
//! 16 µs symbol. One octet is 2 symbols; the synchronisation header
//! (4-octet preamble + 1-octet SFD) plus the PHY header add 12 symbols
//! to every frame.

/// One O-QPSK symbol in microseconds.
pub const SYMBOL_US: u64 = 16;
/// Symbols per octet at 250 kb/s (4 bits per symbol).
pub const SYMBOLS_PER_OCTET: u64 = 2;
/// SHR (preamble + SFD) + PHR length in symbols.
pub const PHY_OVERHEAD_SYMBOLS: u64 = 12;
/// Rx↔tx turnaround time in symbols (aTurnaroundTime).
pub const TURNAROUND_SYMBOLS: u64 = 12;
/// CCA detection window in symbols.
pub const CCA_SYMBOLS: u64 = 8;
/// One unit backoff period in symbols (aUnitBackoffPeriod).
pub const UNIT_BACKOFF_SYMBOLS: u64 = 20;
/// ACK wait duration in symbols (macAckWaitDuration).
pub const ACK_WAIT_SYMBOLS: u64 = 54;
/// PSDU length of an immediate acknowledgement frame, in octets.
pub const ACK_PSDU_OCTETS: u64 = 5;
/// Maximum PSDU length in octets (aMaxPHYPacketSize).
pub const MAX_PSDU_OCTETS: u64 = 127;
/// aBaseSlotDuration in symbols (one superframe slot at SO=0).
pub const BASE_SLOT_SYMBOLS: u64 = 60;
/// Number of slots in a superframe (aNumSuperframeSlots).
pub const SUPERFRAME_SLOTS: u64 = 16;

/// Timing calculator for the O-QPSK PHY.
///
/// # Examples
///
/// ```
/// use qma_phy::PhyTiming;
///
/// let t = PhyTiming::oqpsk_2_4ghz();
/// // A maximum-size frame (127-octet PSDU) is on air for 4.256 ms.
/// assert_eq!(t.frame_airtime_us(127), 4256);
/// // An ACK lasts 352 µs.
/// assert_eq!(t.ack_airtime_us(), 352);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhyTiming {
    symbol_us: u64,
}

impl Default for PhyTiming {
    fn default() -> Self {
        Self::oqpsk_2_4ghz()
    }
}

impl PhyTiming {
    /// The standard 2.4 GHz O-QPSK PHY (16 µs symbols).
    pub const fn oqpsk_2_4ghz() -> Self {
        PhyTiming {
            symbol_us: SYMBOL_US,
        }
    }

    /// Duration of `n` symbols in microseconds.
    pub const fn symbols_us(&self, n: u64) -> u64 {
        n * self.symbol_us
    }

    /// Airtime of a frame with a `psdu_octets`-octet MAC payload
    /// (PSDU), including SHR and PHR, in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `psdu_octets` exceeds [`MAX_PSDU_OCTETS`].
    pub fn frame_airtime_us(&self, psdu_octets: u64) -> u64 {
        assert!(
            psdu_octets <= MAX_PSDU_OCTETS,
            "PSDU too large: {psdu_octets} > {MAX_PSDU_OCTETS}"
        );
        self.symbols_us(PHY_OVERHEAD_SYMBOLS + SYMBOLS_PER_OCTET * psdu_octets)
    }

    /// Airtime of an immediate ACK frame in microseconds.
    pub fn ack_airtime_us(&self) -> u64 {
        self.frame_airtime_us(ACK_PSDU_OCTETS)
    }

    /// The rx→tx / tx→rx turnaround in microseconds.
    pub const fn turnaround_us(&self) -> u64 {
        self.symbols_us(TURNAROUND_SYMBOLS)
    }

    /// The CCA window in microseconds.
    pub const fn cca_us(&self) -> u64 {
        self.symbols_us(CCA_SYMBOLS)
    }

    /// One unit backoff period in microseconds.
    pub const fn unit_backoff_us(&self) -> u64 {
        self.symbols_us(UNIT_BACKOFF_SYMBOLS)
    }

    /// macAckWaitDuration in microseconds, measured from the end of
    /// the data frame.
    pub const fn ack_wait_us(&self) -> u64 {
        self.symbols_us(ACK_WAIT_SYMBOLS)
    }

    /// Duration of one superframe slot at superframe order `so`, in
    /// microseconds.
    pub const fn superframe_slot_us(&self, so: u8) -> u64 {
        self.symbols_us(BASE_SLOT_SYMBOLS << so)
    }

    /// Duration of a whole superframe at superframe order `so`.
    pub const fn superframe_us(&self, so: u8) -> u64 {
        self.superframe_slot_us(so) * SUPERFRAME_SLOTS
    }
}

/// Pre-computed timing of one frame exchange (data + optional ACK),
/// used by MAC layers to know how long a transaction occupies the
/// medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTiming {
    /// Airtime of the data frame in µs.
    pub data_airtime_us: u64,
    /// Airtime of the ACK in µs (zero when no ACK is requested).
    pub ack_airtime_us: u64,
    /// Turnaround before the ACK in µs.
    pub turnaround_us: u64,
    /// How long the sender waits for an ACK after its data frame, µs.
    pub ack_wait_us: u64,
}

impl FrameTiming {
    /// Computes the exchange timing for a `psdu_octets` data frame.
    pub fn for_frame(phy: &PhyTiming, psdu_octets: u64, ack_requested: bool) -> FrameTiming {
        FrameTiming {
            data_airtime_us: phy.frame_airtime_us(psdu_octets),
            ack_airtime_us: if ack_requested {
                phy.ack_airtime_us()
            } else {
                0
            },
            turnaround_us: phy.turnaround_us(),
            ack_wait_us: phy.ack_wait_us(),
        }
    }

    /// Worst-case duration of the whole transaction from tx start to
    /// the point the sender knows the outcome: airtime plus either the
    /// full ACK exchange (success path) or the ACK wait (timeout
    /// path), whichever is longer.
    pub fn transaction_us(&self) -> u64 {
        let success_path = self.data_airtime_us + self.turnaround_us + self.ack_airtime_us;
        let timeout_path = self.data_airtime_us + self.ack_wait_us;
        success_path.max(timeout_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_constants() {
        let t = PhyTiming::oqpsk_2_4ghz();
        assert_eq!(t.symbols_us(1), 16);
        assert_eq!(t.cca_us(), 128);
        assert_eq!(t.turnaround_us(), 192);
        assert_eq!(t.unit_backoff_us(), 320);
        assert_eq!(t.ack_wait_us(), 864);
    }

    #[test]
    fn frame_airtimes() {
        let t = PhyTiming::oqpsk_2_4ghz();
        // Empty PSDU: just SHR+PHR = 12 symbols.
        assert_eq!(t.frame_airtime_us(0), 192);
        assert_eq!(t.frame_airtime_us(127), 4256);
        assert_eq!(t.ack_airtime_us(), 352);
    }

    #[test]
    #[should_panic(expected = "PSDU too large")]
    fn oversized_psdu_panics() {
        PhyTiming::oqpsk_2_4ghz().frame_airtime_us(128);
    }

    #[test]
    fn superframe_durations() {
        let t = PhyTiming::oqpsk_2_4ghz();
        // SO=0: 960 symbols = 15.36 ms.
        assert_eq!(t.superframe_us(0), 15_360);
        // SO=3: 8× longer.
        assert_eq!(t.superframe_us(3), 122_880);
        assert_eq!(t.superframe_slot_us(3), 7_680);
    }

    #[test]
    fn transaction_duration_paths() {
        let phy = PhyTiming::oqpsk_2_4ghz();
        let ft = FrameTiming::for_frame(&phy, 50, true);
        assert_eq!(ft.data_airtime_us, phy.frame_airtime_us(50));
        // ACK wait (864) > turnaround + ack air (192+352=544), so the
        // timeout path dominates.
        assert_eq!(ft.transaction_us(), ft.data_airtime_us + 864);
        let no_ack = FrameTiming::for_frame(&phy, 50, false);
        assert_eq!(no_ack.ack_airtime_us, 0);
    }
}
