//! 2-D geometry for node placement.

use std::fmt;

/// A node position in metres.
///
/// # Examples
///
/// ```
/// use qma_phy::Position;
///
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Position {
    /// The origin.
    pub const ORIGIN: Position = Position { x: 0.0, y: 0.0 };

    /// Creates a position.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance_to(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Creates a position from polar coordinates around a centre.
    pub fn polar(center: Position, radius: f64, angle_rad: f64) -> Position {
        Position {
            x: center.x + radius * angle_rad.cos(),
            y: center.y + radius * angle_rad.sin(),
        }
    }

    /// Midpoint between two positions.
    pub fn midpoint(self, other: Position) -> Position {
        Position {
            x: (self.x + other.x) / 2.0,
            y: (self.y + other.y) / 2.0,
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Position::new(1.0, 2.0);
        let b = Position::new(-3.0, 5.0);
        assert_eq!(a.distance_to(b), b.distance_to(a));
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn polar_points_land_on_circle() {
        let c = Position::new(10.0, 10.0);
        for k in 0..8 {
            let angle = k as f64 * std::f64::consts::FRAC_PI_4;
            let p = Position::polar(c, 7.5, angle);
            assert!((p.distance_to(c) - 7.5).abs() < 1e-9);
        }
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(4.0, -2.0);
        let m = a.midpoint(b);
        assert_eq!(m, Position::new(2.0, -1.0));
        assert!((a.distance_to(m) - b.distance_to(m)).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(Position::new(1.0, 2.5).to_string(), "(1.00, 2.50)");
    }
}
