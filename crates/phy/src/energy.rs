//! Radio energy accounting.
//!
//! §6.2.1 of the paper reports that "energy measurements in the
//! IoT-LAB show no difference between QMA and unslotted CSMA/CA in
//! terms of power consumption … both multiple access schemes conduct
//! about the same number of transmission attempts". We account energy
//! the same way: integrate per-state power over time and count the
//! discrete radio operations (transmission attempts, CCAs) that
//! dominate consumption.

/// What the radio is doing, for energy-integration purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RadioActivity {
    /// Radio powered down.
    Sleep,
    /// Receiver on, listening or receiving.
    Listen,
    /// Transmitting.
    Transmit,
}

/// Per-state power draw in milliwatts.
///
/// Defaults follow the AT86RF231 transceiver on the IoT-LAB M3 node
/// (rx ≈ 12.3 mA, tx@3dBm ≈ 14 mA at 3 V ≈ 37/42 mW; sleep ≈ 20 nW,
/// rounded).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerProfile {
    /// Power while sleeping, mW.
    pub sleep_mw: f64,
    /// Power while listening/receiving, mW.
    pub listen_mw: f64,
    /// Power while transmitting, mW.
    pub transmit_mw: f64,
}

impl Default for PowerProfile {
    fn default() -> Self {
        PowerProfile {
            sleep_mw: 0.0001,
            listen_mw: 37.0,
            transmit_mw: 42.0,
        }
    }
}

impl PowerProfile {
    /// Power draw for an activity, mW.
    pub fn power_mw(&self, activity: RadioActivity) -> f64 {
        match activity {
            RadioActivity::Sleep => self.sleep_mw,
            RadioActivity::Listen => self.listen_mw,
            RadioActivity::Transmit => self.transmit_mw,
        }
    }
}

/// Integrates radio energy for one node and counts the discrete
/// operations the paper compares (§6.2.1).
///
/// # Examples
///
/// ```
/// use qma_phy::{EnergyMeter, PowerProfile, RadioActivity};
///
/// let mut meter = EnergyMeter::new(PowerProfile::default());
/// meter.set_activity(0, RadioActivity::Listen);
/// meter.set_activity(1_000_000, RadioActivity::Transmit); // after 1 s
/// meter.set_activity(1_004_256, RadioActivity::Listen);   // 4.256 ms tx
/// let report = meter.finish(2_000_000);
/// assert!(report.total_mj > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyMeter {
    profile: PowerProfile,
    current: RadioActivity,
    since_us: u64,
    energy_uj: f64, // microjoules = mW × µs / 1000... see note below
    tx_attempts: u64,
    ccas: u64,
    listen_us: u64,
    transmit_us: u64,
    sleep_us: u64,
}

/// Summary of one node's radio usage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Total consumed energy in millijoules.
    pub total_mj: f64,
    /// Number of frame transmission attempts.
    pub tx_attempts: u64,
    /// Number of clear-channel assessments performed.
    pub ccas: u64,
    /// Time spent listening, µs.
    pub listen_us: u64,
    /// Time spent transmitting, µs.
    pub transmit_us: u64,
    /// Time spent sleeping, µs.
    pub sleep_us: u64,
}

impl EnergyMeter {
    /// Creates a meter; the radio starts in [`RadioActivity::Listen`]
    /// at time 0 (contention MACs keep the transceiver on during the
    /// CAP, as the paper notes in §4).
    pub fn new(profile: PowerProfile) -> Self {
        EnergyMeter {
            profile,
            current: RadioActivity::Listen,
            since_us: 0,
            energy_uj: 0.0,
            tx_attempts: 0,
            ccas: 0,
            listen_us: 0,
            transmit_us: 0,
            sleep_us: 0,
        }
    }

    /// Switches activity at absolute time `now_us`, accruing energy
    /// for the elapsed interval.
    pub fn set_activity(&mut self, now_us: u64, next: RadioActivity) {
        self.accrue(now_us);
        self.current = next;
    }

    /// Records one frame transmission attempt.
    pub fn count_tx_attempt(&mut self) {
        self.tx_attempts += 1;
    }

    /// Records one CCA.
    pub fn count_cca(&mut self) {
        self.ccas += 1;
    }

    /// Closes the accounting period at `end_us` and returns the
    /// report. The meter can continue to be used afterwards.
    pub fn finish(&mut self, end_us: u64) -> EnergyReport {
        self.accrue(end_us);
        EnergyReport {
            // mW × µs = nJ; → mJ by 1e-6.
            total_mj: self.energy_uj * 1e-6,
            tx_attempts: self.tx_attempts,
            ccas: self.ccas,
            listen_us: self.listen_us,
            transmit_us: self.transmit_us,
            sleep_us: self.sleep_us,
        }
    }

    fn accrue(&mut self, now_us: u64) {
        let dt = now_us.saturating_sub(self.since_us);
        if dt == 0 {
            self.since_us = self.since_us.max(now_us);
            return;
        }
        self.energy_uj += self.profile.power_mw(self.current) * dt as f64;
        match self.current {
            RadioActivity::Sleep => self.sleep_us += dt,
            RadioActivity::Listen => self.listen_us += dt,
            RadioActivity::Transmit => self.transmit_us += dt,
        }
        self.since_us = now_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_listening_energy() {
        let mut m = EnergyMeter::new(PowerProfile::default());
        let r = m.finish(1_000_000); // 1 s of listening at 37 mW
        assert!((r.total_mj - 37.0).abs() < 1e-9);
        assert_eq!(r.listen_us, 1_000_000);
        assert_eq!(r.transmit_us, 0);
    }

    #[test]
    fn mixed_states_integrate() {
        let p = PowerProfile {
            sleep_mw: 0.0,
            listen_mw: 10.0,
            transmit_mw: 100.0,
        };
        let mut m = EnergyMeter::new(p);
        m.set_activity(500_000, RadioActivity::Transmit); // 0.5 s listen
        m.set_activity(600_000, RadioActivity::Sleep); // 0.1 s tx
        let r = m.finish(1_000_000); // 0.4 s sleep
                                     // 0.5 s·10 mW + 0.1 s·100 mW = 5 + 10 = 15 mJ.
        assert!((r.total_mj - 15.0).abs() < 1e-9);
        assert_eq!(r.listen_us, 500_000);
        assert_eq!(r.transmit_us, 100_000);
        assert_eq!(r.sleep_us, 400_000);
    }

    #[test]
    fn counters() {
        let mut m = EnergyMeter::new(PowerProfile::default());
        m.count_tx_attempt();
        m.count_tx_attempt();
        m.count_cca();
        let r = m.finish(1);
        assert_eq!(r.tx_attempts, 2);
        assert_eq!(r.ccas, 1);
    }

    #[test]
    fn out_of_order_updates_are_clamped() {
        let mut m = EnergyMeter::new(PowerProfile::default());
        m.set_activity(1000, RadioActivity::Transmit);
        m.set_activity(500, RadioActivity::Listen); // late event
        let r = m.finish(1000);
        assert_eq!(r.listen_us, 1000);
        assert_eq!(r.transmit_us, 0);
    }

    #[test]
    fn finish_is_resumable() {
        let mut m = EnergyMeter::new(PowerProfile::default());
        let r1 = m.finish(1_000_000);
        let r2 = m.finish(2_000_000);
        assert!(r2.total_mj > r1.total_mj);
        assert_eq!(r2.listen_us, 2_000_000);
    }
}
