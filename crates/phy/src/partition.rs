//! Spatial partitioning of the medium for sharded execution.
//!
//! A [`MediumPartition`] overlays a shard structure (contiguous node
//! id ranges, see `qma_des::ShardPlan`) on a [`Connectivity`] graph
//! and classifies every transmitter row:
//!
//! * **local rows** — all listeners live in the transmitter's own
//!   shard, so the transmission's energy/lock bookkeeping touches only
//!   shard-owned receiver state;
//! * **border rows** — at least one listener lives in another shard;
//!   their medium effects must travel through the boundary-exchange
//!   outboxes and be applied in the deterministic barrier fold.
//!
//! The sharded executor consults this classification for its
//! diagnostics (how much of the population is barrier-bound) and the
//! benchmarks report it as the partition-quality figure of merit: the
//! massive grid (row-major lattice, tiled into bands) keeps the border
//! fraction near `K / rows`, while the hidden star (every source heard
//! only by the one sink) is all-border by construction — the
//! adversarial case the deterministic fold exists for.

use crate::medium::{Connectivity, PhyNodeId};

/// Aggregate partition statistics — the shard-quality report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionStats {
    /// Number of shards.
    pub shards: usize,
    /// Nodes covered.
    pub nodes: usize,
    /// Directed audibility edges in the connectivity.
    pub edges: usize,
    /// Directed edges crossing a shard border.
    pub cross_edges: usize,
    /// Transmitter rows whose listeners are all shard-local.
    pub local_rows: usize,
    /// Transmitter rows with at least one cross-border listener.
    pub border_rows: usize,
}

impl PartitionStats {
    /// Fraction of directed edges that cross a shard border, in
    /// `[0, 1]` (0 for an edgeless graph).
    pub fn cross_fraction(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.cross_edges as f64 / self.edges as f64
        }
    }
}

/// A connectivity graph partitioned into contiguous shard ranges.
#[derive(Debug, Clone)]
pub struct MediumPartition {
    /// `shards + 1` ascending cut points over the node id space.
    bounds: Vec<u32>,
    /// Per transmitter: does its listener row stay within its shard?
    row_local: Vec<bool>,
    stats: PartitionStats,
}

impl MediumPartition {
    /// Builds the partition from explicit cut points (`shards + 1`
    /// ascending values, first 0, last `conn.len()`) — the raw form of
    /// `qma_des::ShardPlan::bounds`, taken as a slice so this crate
    /// stays free of a kernel dependency.
    ///
    /// # Panics
    ///
    /// Panics if the cut points are not ascending from 0 to
    /// `conn.len()`.
    pub fn from_bounds(conn: &Connectivity, bounds: &[u32]) -> MediumPartition {
        let n = conn.len();
        assert!(bounds.len() >= 2, "need at least one shard");
        assert_eq!(bounds[0], 0, "partition must start at node 0");
        assert_eq!(*bounds.last().expect("non-empty") as usize, n);
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "cut points must ascend"
        );

        let shard_of = |i: u32| bounds.partition_point(|&b| b <= i) - 1;
        let mut row_local = vec![true; n];
        let mut edges = 0usize;
        let mut cross_edges = 0usize;
        for (tx, local) in row_local.iter_mut().enumerate() {
            let home = shard_of(tx as u32);
            for &rx in conn.listeners(PhyNodeId(tx as u32)) {
                edges += 1;
                if shard_of(rx.0) != home {
                    cross_edges += 1;
                    *local = false;
                }
            }
        }
        let local_rows = row_local.iter().filter(|&&l| l).count();
        MediumPartition {
            bounds: bounds.to_vec(),
            row_local,
            stats: PartitionStats {
                shards: bounds.len() - 1,
                nodes: n,
                edges,
                cross_edges,
                local_rows,
                border_rows: n - local_rows,
            },
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The shard owning node `i`.
    pub fn shard_of(&self, i: PhyNodeId) -> usize {
        self.bounds.partition_point(|&b| b <= i.0) - 1
    }

    /// `true` when every listener of `tx` lives in `tx`'s own shard
    /// (its transmissions never need the boundary exchange).
    pub fn row_is_local(&self, tx: PhyNodeId) -> bool {
        self.row_local[tx.index()]
    }

    /// Aggregate partition statistics.
    pub fn stats(&self) -> PartitionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hidden_star_is_all_border_beyond_one_shard() {
        // Sources 0..4 around sink 4: every source row = {sink}.
        let edges: Vec<(u32, u32)> = (0..4).map(|i| (i, 4)).collect();
        let conn = Connectivity::symmetric(5, &edges);
        let p = MediumPartition::from_bounds(&conn, &[0, 3, 5]);
        let s = p.stats();
        assert_eq!(s.shards, 2);
        assert_eq!(s.edges, 8);
        // Shard 0 = {0,1,2}, shard 1 = {3,4}: sources 0–2 and the sink
        // are border rows; source 3 shares the sink's shard.
        assert!(!p.row_is_local(PhyNodeId(0)));
        assert!(p.row_is_local(PhyNodeId(3)));
        assert!(!p.row_is_local(PhyNodeId(4)), "the sink reaches all shards");
        assert_eq!(s.border_rows, 4);
        assert!(s.cross_fraction() > 0.5);
    }

    #[test]
    fn band_tiling_keeps_most_grid_rows_local() {
        // A 4×4 row-major lattice, 4-neighbour connectivity, split into
        // two bands of two rows: only the middle rows are border rows.
        let mut edges = Vec::new();
        let idx = |x: u32, y: u32| y * 4 + x;
        for y in 0..4u32 {
            for x in 0..4u32 {
                if x + 1 < 4 {
                    edges.push((idx(x, y), idx(x + 1, y)));
                }
                if y + 1 < 4 {
                    edges.push((idx(x, y), idx(x, y + 1)));
                }
            }
        }
        let conn = Connectivity::symmetric(16, &edges);
        let p = MediumPartition::from_bounds(&conn, &[0, 8, 16]);
        let s = p.stats();
        assert_eq!(s.nodes, 16);
        // Rows 0 and 3 are interior to their bands; rows 1 and 2 touch
        // the cut.
        for x in 0..4 {
            assert!(p.row_is_local(PhyNodeId(idx(x, 0))));
            assert!(!p.row_is_local(PhyNodeId(idx(x, 1))));
            assert!(!p.row_is_local(PhyNodeId(idx(x, 2))));
            assert!(p.row_is_local(PhyNodeId(idx(x, 3))));
        }
        assert_eq!(s.local_rows, 8);
        assert_eq!(s.cross_edges, 8, "4 cut links, both directions");
        assert!(s.cross_fraction() < 0.2);
    }

    #[test]
    fn single_shard_has_no_borders() {
        let conn = Connectivity::full(6);
        let p = MediumPartition::from_bounds(&conn, &[0, 6]);
        let s = p.stats();
        assert_eq!(s.shards, 1);
        assert_eq!(s.cross_edges, 0);
        assert_eq!(s.local_rows, 6);
        assert_eq!(s.cross_fraction(), 0.0);
        assert!((0..6).all(|i| p.shard_of(PhyNodeId(i)) == 0));
    }

    #[test]
    fn explicit_bounds_roundtrip() {
        let conn = Connectivity::full(4);
        let p = MediumPartition::from_bounds(&conn, &[0, 2, 4]);
        assert_eq!(p.shard_of(PhyNodeId(1)), 0);
        assert_eq!(p.shard_of(PhyNodeId(2)), 1);
        // Full connectivity: every row crosses the single border.
        assert_eq!(p.stats().local_rows, 0);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn unsorted_bounds_panic() {
        let conn = Connectivity::full(4);
        let _ = MediumPartition::from_bounds(&conn, &[0, 3, 2, 4]);
    }
}
