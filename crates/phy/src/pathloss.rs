//! Propagation models.
//!
//! The testbed experiments (§6.2) specify links by transmission power
//! and receiver sensitivity: "transmission power is set to −9 dBm and
//! sensitivity is set to −72 dBm" (tree), "3 dBm and −90 dBm" (star).
//! We reconstruct connectivity by solving the path-loss equation for
//! the distance at which received power equals the sensitivity.

use crate::units::Dbm;

/// Speed of light in m/s.
const C: f64 = 299_792_458.0;

/// A deterministic path-loss model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathLoss {
    /// Free-space (Friis) propagation at a carrier frequency in Hz.
    FreeSpace {
        /// Carrier frequency in Hz (2.45 GHz for IEEE 802.15.4).
        frequency_hz: f64,
    },
    /// Log-distance model: `PL(d) = PL(d0) + 10·n·log10(d/d0)`.
    LogDistance {
        /// Path-loss exponent (2 = free space, 3–4 indoor).
        exponent: f64,
        /// Reference loss in dB at distance `reference_m`.
        reference_loss_db: f64,
        /// Reference distance in metres.
        reference_m: f64,
    },
}

impl PathLoss {
    /// Free-space propagation at the 2.45 GHz ISM band used by
    /// IEEE 802.15.4 O-QPSK.
    pub fn free_space_2_4ghz() -> Self {
        PathLoss::FreeSpace {
            frequency_hz: 2.45e9,
        }
    }

    /// A typical indoor/testbed log-distance model at 2.45 GHz
    /// (exponent 2.6, free-space reference loss at 1 m).
    pub fn indoor_2_4ghz() -> Self {
        let fs = PathLoss::free_space_2_4ghz();
        PathLoss::LogDistance {
            exponent: 2.6,
            reference_loss_db: fs.loss_db(1.0),
            reference_m: 1.0,
        }
    }

    /// Path loss in dB at distance `d` metres.
    ///
    /// Distances below 1 mm are clamped to avoid the models' near-field
    /// singularity.
    pub fn loss_db(&self, d: f64) -> f64 {
        let d = d.max(1e-3);
        match *self {
            PathLoss::FreeSpace { frequency_hz } => {
                20.0 * d.log10()
                    + 20.0 * frequency_hz.log10()
                    + 20.0 * (4.0 * std::f64::consts::PI / C).log10()
            }
            PathLoss::LogDistance {
                exponent,
                reference_loss_db,
                reference_m,
            } => reference_loss_db + 10.0 * exponent * (d / reference_m).log10(),
        }
    }

    /// Received power at distance `d` for transmit power `tx`.
    pub fn received_power(&self, tx: Dbm, d: f64) -> Dbm {
        tx - self.loss_db(d)
    }

    /// The maximum distance at which a signal transmitted at `tx` is
    /// still received at or above `sensitivity` (the communication
    /// range).
    pub fn max_range(&self, tx: Dbm, sensitivity: Dbm) -> f64 {
        let budget_db = tx - sensitivity;
        match *self {
            PathLoss::FreeSpace { .. } => {
                // Invert loss_db(d) = budget.
                let k = self.loss_db(1.0);
                10f64.powf((budget_db - k) / 20.0)
            }
            PathLoss::LogDistance {
                exponent,
                reference_loss_db,
                reference_m,
            } => reference_m * 10f64.powf((budget_db - reference_loss_db) / (10.0 * exponent)),
        }
    }

    /// Returns `true` if a transmission at `tx` over distance `d` is
    /// audible to a receiver with the given `sensitivity`.
    pub fn audible(&self, tx: Dbm, sensitivity: Dbm, d: f64) -> bool {
        self.received_power(tx, d).value() >= sensitivity.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_reference_loss() {
        // Friis at 2.45 GHz, 1 m ≈ 40.2 dB.
        let fs = PathLoss::free_space_2_4ghz();
        let l1 = fs.loss_db(1.0);
        assert!((l1 - 40.2).abs() < 0.3, "1 m loss {l1}");
        // +20 dB per decade of distance.
        assert!((fs.loss_db(10.0) - l1 - 20.0).abs() < 1e-9);
        assert!((fs.loss_db(100.0) - l1 - 40.0).abs() < 1e-9);
    }

    #[test]
    fn log_distance_slope() {
        let m = PathLoss::LogDistance {
            exponent: 3.0,
            reference_loss_db: 40.0,
            reference_m: 1.0,
        };
        assert!((m.loss_db(1.0) - 40.0).abs() < 1e-12);
        assert!((m.loss_db(10.0) - 70.0).abs() < 1e-9);
    }

    #[test]
    fn max_range_inverts_loss() {
        for model in [PathLoss::free_space_2_4ghz(), PathLoss::indoor_2_4ghz()] {
            for (tx, sens) in [(-9.0, -72.0), (3.0, -90.0)] {
                let tx = Dbm::new(tx);
                let sens = Dbm::new(sens);
                let r = model.max_range(tx, sens);
                // At the range boundary, received power == sensitivity.
                let at_edge = model.received_power(tx, r);
                assert!(
                    (at_edge.value() - sens.value()).abs() < 1e-6,
                    "model {model:?}: edge power {at_edge}"
                );
                assert!(model.audible(tx, sens, r * 0.999));
                assert!(!model.audible(tx, sens, r * 1.001));
            }
        }
    }

    #[test]
    fn testbed_parameter_ranges_are_ordered() {
        // The star configuration (3 dBm / −90 dBm) must reach farther
        // than the tree configuration (−9 dBm / −72 dBm).
        let m = PathLoss::indoor_2_4ghz();
        let tree = m.max_range(Dbm::new(-9.0), Dbm::new(-72.0));
        let star = m.max_range(Dbm::new(3.0), Dbm::new(-90.0));
        assert!(star > tree * 2.0, "tree {tree} star {star}");
    }

    #[test]
    fn received_power_monotone_in_distance() {
        let m = PathLoss::indoor_2_4ghz();
        let tx = Dbm::new(0.0);
        let mut last = f64::INFINITY;
        for d in [0.5, 1.0, 2.0, 5.0, 20.0, 100.0] {
            let p = m.received_power(tx, d).value();
            assert!(p < last);
            last = p;
        }
    }

    #[test]
    fn near_field_clamped() {
        let m = PathLoss::free_space_2_4ghz();
        assert!(m.loss_db(0.0).is_finite());
    }
}
