//! Minimal, registry-free stand-in for the `rand` crate.
//!
//! The workspace builds in environments without access to crates.io,
//! so this crate provides the small slice of the `rand 0.8` API the
//! simulation actually uses: [`RngCore`], [`Rng`] (`gen`,
//! `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`]. `StdRng` is xoshiro256++ seeded via splitmix64 —
//! deterministic across platforms, which is all the DES kernel
//! requires (reproducibility matters here, bit-compatibility with
//! upstream `rand` does not).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64/32-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain
/// (`[0, 1)` for floats, the full range for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sint {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_sint!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Rounding can land exactly on the excluded end bound
                // (e.g. huge start with tiny span); clamp back inside.
                if v >= self.end {
                    self.end.next_down()
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Unbiased uniform draw from `[0, span)` by rejection; `span` must
/// be non-zero.
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// High-level sampling helpers, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of the "standard" distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256++ with splitmix64 seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible() {
        let a: u64 = StdRng::seed_from_u64(7).gen();
        let b: u64 = StdRng::seed_from_u64(7).gen();
        assert_eq!(a, b);
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_ne!(a, c);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_spans() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }
}
