//! Minimal, registry-free stand-in for the `rayon` crate.
//!
//! Provides the order-preserving `into_par_iter().map(..).collect()`
//! pipeline the benchmark runner uses, implemented over
//! `std::thread::scope` with an atomic work queue. Results are
//! always collected in input order, so a parallel run is
//! bit-identical to a serial one — the property the replication
//! runner's determinism contract depends on.
//!
//! Thread count comes from `RAYON_NUM_THREADS` when set (a value of
//! `1` degenerates to a serial loop on the calling thread), otherwise
//! from `std::thread::available_parallelism()`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelMap};
}

/// Number of worker threads a parallel pipeline will use for `n`
/// work items.
pub fn current_num_threads() -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(hw)
}

/// Conversion into a parallel iterator (only `Vec<T>` is supported).
pub trait IntoParallelIterator {
    /// Element type of the pipeline.
    type Item: Send;

    /// Starts a parallel pipeline over `self`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A parallel pipeline over an owned collection of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` on the worker pool.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParallelMap<T, F> {
        ParallelMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel pipeline, consumed by [`ParallelMap::collect`].
pub struct ParallelMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParallelMap<T, F> {
    /// Runs the pipeline and collects results **in input order**.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromParallelIterator<R>,
    {
        C::from_ordered_vec(par_map_vec(self.items, &self.f))
    }
}

/// Collections constructible from an ordered parallel result set.
pub trait FromParallelIterator<R> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered_vec(v: Vec<R>) -> Self {
        v
    }
}

/// Maps `items` through `f` on a scoped thread pool, preserving input
/// order in the output.
fn par_map_vec<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Slots hold the inputs (taken exactly once via the atomic work
    // counter) and the outputs (written back by index), so the final
    // collection order is the input order regardless of scheduling.
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("work item taken twice");
                let out = f(item);
                *outputs[i].lock().expect("output slot poisoned") = Some(out);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("output slot poisoned")
                .expect("work item not completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<u64> = (0u64..500)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x * x)
            .collect();
        assert_eq!(out.len(), 500);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u8> = vec![9u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn parallel_matches_serial() {
        let items: Vec<u64> = (0..200).collect();
        let serial: Vec<u64> = items.iter().map(|x| x.wrapping_mul(2654435761)).collect();
        let parallel: Vec<u64> = items
            .into_par_iter()
            .map(|x| x.wrapping_mul(2654435761))
            .collect();
        assert_eq!(serial, parallel);
    }
}
