//! Minimal, registry-free stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! [`Just`], [`any`], [`prop_oneof!`], range strategies over the
//! numeric types, tuple strategies, and `prop::collection::vec`.
//!
//! Differences from real proptest: there is no shrinking — a failing
//! case panics immediately with the assertion message — and case
//! generation is deterministic per test (seeded from the test name),
//! so failures reproduce without a persistence file. The case count
//! defaults to 128 and can be overridden with `PROPTEST_CASES`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for any value of an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Uniform choice between type-erased alternatives (the engine
/// behind [`prop_oneof!`]).
pub struct Union<V> {
    alternatives: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `alternatives`; must be non-empty.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union { alternatives }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.alternatives.len());
        self.alternatives[i].generate(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Size specifications accepted by [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors whose elements come from `element` and
    /// whose length comes from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod runner {
    use super::{SeedableRng, StdRng};

    /// Number of cases per property (`PROPTEST_CASES`, default 128).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(128)
    }

    /// Deterministic per-test generator seeded from the test name.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Declares property tests: each function body runs for
/// [`runner::cases`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut proptest_rng = $crate::runner::rng_for(stringify!($name));
                for proptest_case in 0..$crate::runner::cases() {
                    let _ = proptest_case;
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_rng);)*
                    $body
                }
            }
        )*
    };
}

/// Uniformly picks one of the listed sub-strategies per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($alternative:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($alternative)),+])
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Color {
        Red,
        Green,
        Blue,
    }

    fn arb_color() -> impl Strategy<Value = Color> {
        prop_oneof![Just(Color::Red), Just(Color::Green), Just(Color::Blue)]
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u16..9, y in -2.5f64..=2.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.5..=2.5).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<bool>(), 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..4, arb_color().prop_map(|c| c == Color::Red))) {
            let (n, is_red) = pair;
            prop_assert!(n < 4);
            let _ = is_red;
        }

        #[test]
        fn exact_vec_size(v in prop::collection::vec(any::<u8>(), 17)) {
            prop_assert_eq!(v.len(), 17);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strategy = arb_color();
        let mut rng = crate::runner::rng_for("oneof_hits_every_arm");
        let mut seen = [false; 3];
        for _ in 0..200 {
            match strategy.generate(&mut rng) {
                Color::Red => seen[0] = true,
                Color::Green => seen[1] = true,
                Color::Blue => seen[2] = true,
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = crate::runner::rng_for("some_test");
            (0..8)
                .map(|_| crate::Arbitrary::arbitrary(&mut r))
                .collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::runner::rng_for("some_test");
            (0..8)
                .map(|_| crate::Arbitrary::arbitrary(&mut r))
                .collect()
        };
        assert_eq!(a, b);
    }
}
