//! Minimal, registry-free stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's micro-benchmarks use:
//! [`black_box`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! warmup to calibrate the per-iteration cost, then several timed
//! samples; the median ns/op is reported on stdout and, when
//! `QMA_BENCH_JSON` names a file, appended there as JSON lines so
//! harnesses can scrape machine-readable results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Fully qualified benchmark id (`group/function`).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// The benchmark driver collecting results.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    measurement: Duration,
}

impl Criterion {
    /// Accepted for API compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measurement: self.effective_measurement(),
            ns_per_iter: f64::NAN,
        };
        f(&mut b);
        let result = BenchResult {
            id: id.to_string(),
            ns_per_iter: b.ns_per_iter,
        };
        println!("{:<44} {:>12.1} ns/iter", result.id, result.ns_per_iter);
        emit_json(&result);
        self.results.push(result);
        self
    }

    /// Opens a named group; benchmark ids become `name/function`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn effective_measurement(&self) -> Duration {
        if self.measurement != Duration::ZERO {
            return self.measurement;
        }
        // QMA_BENCH_FAST=1 shrinks sampling for smoke runs (CI).
        if std::env::var("QMA_BENCH_FAST")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            Duration::from_millis(20)
        } else {
            Duration::from_millis(150)
        }
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark under `group/id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the
/// measurement.
#[derive(Debug)]
pub struct Bencher {
    measurement: Duration,
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, storing the median ns-per-iteration over several
    /// samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, f: F) {
        self.ns_per_iter = measure_ns_per_call(self.measurement, f);
    }
}

/// Measures `f`, returning the median nanoseconds per call.
///
/// Calibrates a batch size so one batch takes roughly 1/20 of
/// `budget`, then samples timed batches until the budget is spent
/// (at least 5, at most 101 samples) and returns the median per-call
/// time. This is the measurement core shared by [`Bencher::iter`]
/// and the workspace's standalone `bench` binary.
pub fn measure_ns_per_call<O>(budget: Duration, mut f: impl FnMut() -> O) -> f64 {
    let target_batch = (budget.as_nanos() as u64 / 20).max(1);
    let mut batch = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let elapsed = t.elapsed().as_nanos() as u64;
        if elapsed >= target_batch || batch >= 1 << 30 {
            break;
        }
        batch = batch.saturating_mul(match target_batch.checked_div(elapsed) {
            None => 16, // elapsed below timer resolution
            Some(factor) => (factor + 1).clamp(2, 16),
        });
    }
    // Median over repeated batches damps scheduler noise.
    let mut samples = Vec::new();
    let started = Instant::now();
    while started.elapsed() < budget || samples.len() < 5 {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        if samples.len() >= 101 {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn emit_json(result: &BenchResult) {
    let Ok(path) = std::env::var("QMA_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"id\":\"{}\",\"ns_per_iter\":{:.3}}}\n",
        result.id.replace('"', "'"),
        result.ns_per_iter
    );
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Declares a benchmark group function invoking each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = "Benchmark group (criterion_group!)."]
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        std::env::remove_var("QMA_BENCH_JSON");
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            ..Criterion::default()
        };
        c.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(black_box(3));
                x
            });
        });
        let r = &c.results()[0];
        assert_eq!(r.id, "noop_add");
        assert!(r.ns_per_iter.is_finite() && r.ns_per_iter >= 0.0);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion {
            measurement: Duration::from_millis(2),
            ..Criterion::default()
        };
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(1)));
        g.finish();
        assert_eq!(c.results()[0].id, "grp/inner");
    }
}
